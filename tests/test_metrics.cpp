// Tests for BFS metrics.
#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"

namespace ssau::graph {
namespace {

TEST(Metrics, BfsDistancesOnPath) {
  const Graph g = path(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Metrics, BfsDistancesFromMiddle) {
  const Graph g = path(5);
  const auto d = bfs_distances(g, 2);
  EXPECT_EQ(d[0], 2u);
  EXPECT_EQ(d[2], 0u);
  EXPECT_EQ(d[4], 2u);
}

TEST(Metrics, BfsUnreachableIsInfinity) {
  const Graph g(3, {{0, 1}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(Metrics, EccentricityOfPathEnd) {
  EXPECT_EQ(eccentricity(path(6), 0), 5u);
  EXPECT_EQ(eccentricity(path(6), 3), 3u);
}

TEST(Metrics, EccentricityThrowsOnDisconnected) {
  const Graph g(3, {{0, 1}});
  EXPECT_THROW((void)eccentricity(g, 0), std::runtime_error);
}

TEST(Metrics, DiameterMatchesKnownFamilies) {
  EXPECT_EQ(diameter(complete(10)), 1u);
  EXPECT_EQ(diameter(star(10)), 2u);
  EXPECT_EQ(diameter(cycle(10)), 5u);
  EXPECT_EQ(diameter(path(10)), 9u);
  EXPECT_EQ(diameter(grid(4, 4)), 6u);
}

TEST(Metrics, SingletonDiameterIsZero) {
  EXPECT_EQ(diameter(path(1)), 0u);
}

}  // namespace
}  // namespace ssau::graph
