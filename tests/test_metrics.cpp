// Tests for BFS metrics.
#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"

namespace ssau::graph {
namespace {

TEST(Metrics, BfsDistancesOnPath) {
  const Graph g = path(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Metrics, BfsDistancesFromMiddle) {
  const Graph g = path(5);
  const auto d = bfs_distances(g, 2);
  EXPECT_EQ(d[0], 2u);
  EXPECT_EQ(d[2], 0u);
  EXPECT_EQ(d[4], 2u);
}

TEST(Metrics, BfsUnreachableIsInfinity) {
  const Graph g(3, {{0, 1}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(Metrics, EccentricityOfPathEnd) {
  EXPECT_EQ(eccentricity(path(6), 0), 5u);
  EXPECT_EQ(eccentricity(path(6), 3), 3u);
}

TEST(Metrics, EccentricityThrowsOnDisconnected) {
  const Graph g(3, {{0, 1}});
  EXPECT_THROW((void)eccentricity(g, 0), std::runtime_error);
}

TEST(Metrics, DiameterMatchesKnownFamilies) {
  EXPECT_EQ(diameter(complete(10)), 1u);
  EXPECT_EQ(diameter(star(10)), 2u);
  EXPECT_EQ(diameter(cycle(10)), 5u);
  EXPECT_EQ(diameter(path(10)), 9u);
  EXPECT_EQ(diameter(grid(4, 4)), 6u);
}

TEST(Metrics, SingletonDiameterIsZero) {
  EXPECT_EQ(diameter(path(1)), 0u);
}

TEST(Metrics, DiameterAtMostIsExact) {
  EXPECT_TRUE(diameter_at_most(path(10), 9));
  EXPECT_FALSE(diameter_at_most(path(10), 8));
  EXPECT_TRUE(diameter_at_most(cycle(10), 5));
  EXPECT_FALSE(diameter_at_most(cycle(10), 4));
  EXPECT_TRUE(diameter_at_most(complete(6), 1));
  EXPECT_TRUE(diameter_at_most(path(1), 0));
  // Quick-accept path: 2 * ecc(0) already fits the bound.
  EXPECT_TRUE(diameter_at_most(cycle(10), 10));
  // Gray-zone rejection: ecc(0) = 1 fits bound 1, but a leaf-to-leaf
  // distance of 2 must still be found by the all-sources scan.
  EXPECT_FALSE(diameter_at_most(star(7), 1));
  // Disconnected: beyond any finite bound.
  EXPECT_FALSE(diameter_at_most(Graph(4, {{0, 1}, {2, 3}}), 100));
  const Graph l = lollipop(5, 6);
  EXPECT_TRUE(diameter_at_most(l, diameter(l)));
  EXPECT_FALSE(diameter_at_most(l, diameter(l) - 1));
}

TEST(Metrics, ComponentLabelsNumberByLowestNodeId) {
  const Graph g(6, {{0, 1}, {2, 3}, {3, 4}});
  const auto label = component_labels(g);
  const std::vector<std::uint32_t> want = {0, 0, 1, 1, 1, 2};
  EXPECT_EQ(label, want);
  EXPECT_TRUE(component_labels(Graph(0, {})).empty());
}

TEST(Metrics, ComponentDiametersMeasurePartitionedTopologies) {
  // A path, a triangle, and an isolated node: diameters 3, 1, 0 — the
  // churn-friendly replacement for diameter()'s disconnected throw.
  const Graph g(8, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {4, 6}});
  const auto diams = component_diameters(g);
  const std::vector<std::uint32_t> want = {3, 1, 0};
  EXPECT_EQ(diams, want);
}

TEST(Metrics, ComponentDiametersAgreeWithDiameterWhenConnected) {
  for (const Graph& g : {cycle(9), star(7), grid(3, 4)}) {
    const auto diams = component_diameters(g);
    ASSERT_EQ(diams.size(), 1u);
    EXPECT_EQ(diams.front(), diameter(g));
  }
}

TEST(Metrics, ComponentDiametersTrackChurn) {
  // Cutting a cycle in two places leaves two arcs whose diameters
  // component_diameters reports without a try/catch dance.
  Graph g = cycle(10);
  g.apply_delta({.remove = {{0, 9}, {4, 5}}, .add = {}});
  const auto diams = component_diameters(g);
  const std::vector<std::uint32_t> want = {4, 4};
  EXPECT_EQ(diams, want);
  EXPECT_THROW((void)diameter(g), std::runtime_error);
}

}  // namespace
}  // namespace ssau::graph
