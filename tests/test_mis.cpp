// End-to-end tests for AlgMIS (Thm 1.4) under the synchronous scheduler.
#include "mis/alg_mis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "analysis/experiment.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sched/scheduler.hpp"

namespace ssau::mis {
namespace {

graph::Graph make_graph(const std::string& name) {
  util::Rng rng(8675309);
  if (name == "clique6") return graph::complete(6);
  if (name == "star9") return graph::star(9);
  if (name == "cycle8") return graph::cycle(8);
  if (name == "grid3x4") return graph::grid(3, 4);
  if (name == "path7") return graph::path(7);
  if (name == "random12") return graph::random_connected(12, 0.3, rng);
  throw std::invalid_argument("bad graph name");
}

std::uint64_t mis_budget(int d, core::NodeId n) {
  const double logn = std::log2(std::max<double>(n, 2));
  return static_cast<std::uint64_t>(800.0 * (d + logn + 2) * (logn + 1)) + 800;
}

class MisConvergence
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(MisConvergence, ReachesCorrectMisFromAnywhere) {
  const auto& [graph_name, adversary] = GetParam();
  const graph::Graph g = make_graph(graph_name);
  const int diam = std::max<int>(1, static_cast<int>(graph::diameter(g)));
  const AlgMis alg({.diameter_bound = diam});

  int successes = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed * 65537);
    sched::SynchronousScheduler sched(g.num_nodes());
    core::Engine engine(g, alg, sched,
                        mis_adversarial_configuration(adversary, alg, g, rng),
                        seed);
    const auto outcome = engine.run_until(
        [&](const core::Configuration& c) {
          return mis_legitimate(alg, g, c);
        },
        mis_budget(diam, g.num_nodes()));
    ASSERT_TRUE(outcome.reached)
        << graph_name << "/" << adversary << " seed " << seed;

    // Absorbing: the output vector stays a correct MIS.
    bool stable = true;
    for (std::uint64_t r = 0; r < 10ULL * (diam + 3); ++r) {
      engine.step();
      if (!mis_legitimate(alg, g, engine.config())) stable = false;
    }
    EXPECT_TRUE(stable) << graph_name << "/" << adversary;
    if (stable) ++successes;
  }
  EXPECT_GE(successes, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MisConvergence,
    ::testing::Combine(::testing::Values("clique6", "star9", "cycle8",
                                         "grid3x4", "path7", "random12"),
                       ::testing::Values("random", "adjacent-in", "orphan-out",
                                         "all-in", "mid-restart",
                                         "skewed-steps")));

TEST(Mis, FromScratchProducesIndependentDominatingSet) {
  const graph::Graph g = graph::grid(4, 4);
  const int diam = static_cast<int>(graph::diameter(g));
  const AlgMis alg({.diameter_bound = diam});
  sched::SynchronousScheduler sched(16);
  core::Engine engine(
      g, alg, sched, core::uniform_configuration(16, alg.initial_state()), 7);
  const auto outcome = engine.run_until(
      [&](const core::Configuration& c) { return mis_legitimate(alg, g, c); },
      mis_budget(diam, 16));
  ASSERT_TRUE(outcome.reached);
  EXPECT_TRUE(mis_outputs_correct(alg, g, engine.config()));
}

TEST(Mis, SingleNodeJoinsIn) {
  const graph::Graph g(1, {});
  const AlgMis alg({.diameter_bound = 1});
  sched::SynchronousScheduler sched(1);
  core::Engine engine(g, alg, sched, {alg.initial_state()}, 3);
  const auto outcome = engine.run_until(
      [&](const core::Configuration& c) { return mis_legitimate(alg, g, c); },
      mis_budget(1, 1));
  ASSERT_TRUE(outcome.reached);
  EXPECT_EQ(alg.output(engine.state_of(0)), 1);
}

TEST(Mis, CompleteGraphElectsExactlyOne) {
  // On a clique, MIS = LE: exactly one IN node.
  const graph::Graph g = graph::complete(7);
  const AlgMis alg({.diameter_bound = 1});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sched::SynchronousScheduler sched(7);
    core::Engine engine(
        g, alg, sched, core::uniform_configuration(7, alg.initial_state()),
        seed);
    const auto outcome = engine.run_until(
        [&](const core::Configuration& c) {
          return mis_legitimate(alg, g, c);
        },
        mis_budget(1, 7));
    ASSERT_TRUE(outcome.reached) << "seed " << seed;
    std::size_t in_count = 0;
    for (core::NodeId v = 0; v < 7; ++v) {
      in_count += alg.output(engine.state_of(v)) == 1 ? 1 : 0;
    }
    EXPECT_EQ(in_count, 1u);
  }
}

TEST(Mis, PhasesStayRoundSynchronizedInCleanExecution) {
  // From a clean start: no Restart is ever invoked, every undecided edge
  // stays valid (|step difference| <= 1, Obs 3.3/3.4 analogue), and the
  // decision rounds D+1 / D+2 are entered by all undecided nodes
  // concurrently (Cor 3.6). Mid-phase, steps may legitimately form a
  // distance-shaped gradient (Lem 3.5(3)) — only per-edge validity holds.
  const graph::Graph g = graph::cycle(8);
  const int diam = static_cast<int>(graph::diameter(g));
  const AlgMis alg({.diameter_bound = diam});
  sched::SynchronousScheduler sched(8);
  core::Engine engine(
      g, alg, sched, core::uniform_configuration(8, alg.initial_state()), 5);
  for (int t = 0; t < 500; ++t) {
    engine.step();
    std::vector<int> steps(8, -1);
    for (core::NodeId v = 0; v < 8; ++v) {
      const MisState s = alg.decode(engine.state_of(v));
      ASSERT_NE(s.mode, MisState::Mode::kRestart)
          << "clean run invoked Restart at step " << t;
      if (s.mode == MisState::Mode::kUndecided) steps[v] = s.step;
    }
    for (const auto& [u, v] : g.edges()) {
      if (steps[u] >= 0 && steps[v] >= 0) {
        EXPECT_LE(std::abs(steps[u] - steps[v]), 1)
            << "edge (" << u << "," << v << ") invalid at step " << t;
      }
    }
    // Cor 3.6: the penultimate/ultimate phase rounds are global.
    for (const int tail : {diam + 1, diam + 2}) {
      bool any = false, all = true;
      for (const int s : steps) {
        if (s == tail) any = true;
        if (s >= 0 && s != tail) all = false;
      }
      EXPECT_TRUE(!any || all)
          << "step " << tail << " not entered concurrently at step " << t;
    }
  }
}

TEST(Mis, InNodesNeverHaveInNeighborsPostStabilization) {
  util::Rng graph_rng(424242);
  const graph::Graph g = graph::random_connected(14, 0.25, graph_rng);
  const int diam = std::max<int>(1, static_cast<int>(graph::diameter(g)));
  const AlgMis alg({.diameter_bound = diam});
  sched::SynchronousScheduler sched(g.num_nodes());
  util::Rng rng(17);
  core::Engine engine(g, alg, sched,
                      core::random_configuration(alg, g.num_nodes(), rng), 17);
  const auto outcome = engine.run_until(
      [&](const core::Configuration& c) { return mis_legitimate(alg, g, c); },
      mis_budget(diam, g.num_nodes()));
  ASSERT_TRUE(outcome.reached);
  for (int t = 0; t < 200; ++t) {
    engine.step();
    for (const auto& [u, v] : g.edges()) {
      EXPECT_FALSE(alg.output(engine.state_of(u)) == 1 &&
                   alg.output(engine.state_of(v)) == 1)
          << "adjacent IN nodes at step " << t;
    }
  }
}

TEST(Mis, DecidedSetGrowsMonotonicallyInCleanRuns) {
  // Without faults there are no restarts, and decided nodes never revert:
  // the decided set only grows until it covers V. The property is whp, not
  // certain — adjacent candidates that toss identical coin sequences both
  // join IN and trigger a restart wave — so the seed pins a conflict-free
  // trajectory (re-pin if the engine's rng stream derivation changes).
  const graph::Graph g = graph::grid(3, 3);
  const int diam = static_cast<int>(graph::diameter(g));
  const AlgMis alg({.diameter_bound = diam});
  sched::SynchronousScheduler sched(9);
  core::Engine engine(
      g, alg, sched, core::uniform_configuration(9, alg.initial_state()), 62);
  std::vector<bool> decided(9, false);
  for (int t = 0; t < 2000; ++t) {
    engine.step();
    for (core::NodeId v = 0; v < 9; ++v) {
      const bool now = alg.is_output(engine.state_of(v));
      ASSERT_FALSE(decided[v] && !now)
          << "node " << v << " reverted to undecided at step " << t;
      decided[v] = now;
    }
  }
  for (core::NodeId v = 0; v < 9; ++v) EXPECT_TRUE(decided[v]);
}

TEST(Mis, StressLargerInstance) {
  // A moderately large tissue: 8x8 grid (n = 64, diam = 14) from a random
  // adversarial configuration — single seed, generous budget.
  const graph::Graph g = graph::grid(8, 8);
  const int diam = static_cast<int>(graph::diameter(g));
  const AlgMis alg({.diameter_bound = diam});
  util::Rng rng(777);
  sched::SynchronousScheduler sched(64);
  core::Engine engine(g, alg, sched,
                      core::random_configuration(alg, 64, rng), 777);
  const auto outcome = engine.run_until(
      [&](const core::Configuration& c) { return mis_legitimate(alg, g, c); },
      mis_budget(diam, 64));
  ASSERT_TRUE(outcome.reached);
  EXPECT_TRUE(mis_outputs_correct(alg, g, engine.config()));
}

TEST(Mis, StabilizationScalesGentlyWithN) {
  // Thm 1.4 shape probe on cycles (D grows with n/2, log n factor small):
  // mean rounds should grow roughly linearly in D, not quadratically in n.
  std::vector<double> ds, rounds;
  for (const core::NodeId n : {6u, 10u, 14u}) {
    const graph::Graph g = graph::cycle(n);
    const int diam = static_cast<int>(graph::diameter(g));
    const AlgMis alg({.diameter_bound = diam});
    const auto samples = analysis::run_trials(
        4, 2000 + n, [&](std::size_t, util::Rng& rng) {
          sched::SynchronousScheduler sched(n);
          core::Engine engine(g, alg, sched,
                              core::random_configuration(alg, n, rng), rng());
          const auto outcome = engine.run_until(
              [&](const core::Configuration& c) {
                return mis_legitimate(alg, g, c);
              },
              mis_budget(diam, n));
          EXPECT_TRUE(outcome.reached);
          return static_cast<double>(outcome.rounds);
        });
    ds.push_back(diam);
    rounds.push_back(util::summarize(samples).mean);
  }
  EXPECT_LT(rounds.back(), 40.0 * rounds.front());
}

}  // namespace
}  // namespace ssau::mis
