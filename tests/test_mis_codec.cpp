// Round-trip and size tests for the AlgMIS state codec.
#include <gtest/gtest.h>

#include "mis/alg_mis.hpp"

namespace ssau::mis {
namespace {

class MisCodec : public ::testing::TestWithParam<int> {};

TEST_P(MisCodec, DecodeEncodeIsIdentityOnAllIds) {
  const AlgMis alg({.diameter_bound = GetParam(), .id_alphabet = 5});
  for (core::StateId q = 0; q < alg.state_count(); ++q) {
    EXPECT_EQ(alg.encode(alg.decode(q)), q);
  }
}

TEST_P(MisCodec, StateCountIsLinearInD) {
  const int d = GetParam();
  const AlgMis alg({.diameter_bound = d, .id_alphabet = 5});
  // Undecided 16(D+3) + IN k + OUT 1 + restart 2D+1.
  EXPECT_EQ(alg.state_count(),
            static_cast<core::StateId>(16 * (d + 3) + 5 + 1 + 2 * d + 1));
}

TEST_P(MisCodec, ModesPartition) {
  const int d = GetParam();
  const AlgMis alg({.diameter_bound = d, .id_alphabet = 5});
  std::size_t undecided = 0, in = 0, out = 0, restart = 0;
  for (core::StateId q = 0; q < alg.state_count(); ++q) {
    switch (alg.decode(q).mode) {
      case MisState::Mode::kUndecided: ++undecided; break;
      case MisState::Mode::kIn: ++in; break;
      case MisState::Mode::kOut: ++out; break;
      case MisState::Mode::kRestart: ++restart; break;
    }
  }
  EXPECT_EQ(undecided, static_cast<std::size_t>(16 * (d + 3)));
  EXPECT_EQ(in, 5u);
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(restart, static_cast<std::size_t>(2 * d + 1));
}

INSTANTIATE_TEST_SUITE_P(Diameters, MisCodec, ::testing::Values(1, 2, 4, 7));

TEST(MisCodec, InitialStateShape) {
  const AlgMis alg({.diameter_bound = 2});
  const MisState s = alg.decode(alg.initial_state());
  EXPECT_EQ(s.mode, MisState::Mode::kUndecided);
  EXPECT_EQ(s.step, 0);
  EXPECT_TRUE(s.flag);
  EXPECT_TRUE(s.candidate);
  EXPECT_FALSE(s.trial_collect);
}

TEST(MisCodec, OutputsAreInAndOut) {
  const AlgMis alg({.diameter_bound = 2});
  const auto in = alg.encode({.mode = MisState::Mode::kIn, .id = 3});
  const auto out = alg.encode({.mode = MisState::Mode::kOut});
  EXPECT_TRUE(alg.is_output(in));
  EXPECT_TRUE(alg.is_output(out));
  EXPECT_EQ(alg.output(in), 1);
  EXPECT_EQ(alg.output(out), 0);
  EXPECT_FALSE(alg.is_output(alg.initial_state()));
}

TEST(MisCodec, ParameterValidation) {
  EXPECT_THROW(AlgMis({.diameter_bound = 0}), std::invalid_argument);
  EXPECT_THROW(AlgMis({.diameter_bound = 2, .id_alphabet = 1}),
               std::invalid_argument);
  EXPECT_THROW(AlgMis({.diameter_bound = 2, .id_alphabet = 4, .p0 = 1.5}),
               std::invalid_argument);
}

TEST(MisCodec, StateNames) {
  const AlgMis alg({.diameter_bound = 2});
  EXPECT_NE(alg.state_name(alg.initial_state()).find("U(step=0"),
            std::string::npos);
  EXPECT_EQ(alg.state_name(alg.encode({.mode = MisState::Mode::kOut})), "OUT");
  EXPECT_EQ(alg.state_name(alg.encode({.mode = MisState::Mode::kIn, .id = 2})),
            "IN(id=2)");
}

}  // namespace
}  // namespace ssau::mis
