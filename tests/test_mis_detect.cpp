// Tests for DetectMIS (§3.1.3): orphaned OUT nodes detected
// deterministically, adjacent IN pairs detected whp, soundness on correct
// configurations, and the RandPhase validity check.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"

namespace ssau::mis {
namespace {

bool any_restart(const AlgMis& alg, const core::Configuration& c) {
  for (const core::StateId q : c) {
    if (alg.decode(q).mode == MisState::Mode::kRestart) return true;
  }
  return false;
}

TEST(DetectMis, OrphanOutDetectedImmediately) {
  // A path of three OUT nodes: no IN anywhere — every node restarts on its
  // first activation (deterministic detection).
  const graph::Graph g = graph::path(3);
  const AlgMis alg({.diameter_bound = 2});
  sched::SynchronousScheduler sched(3);
  const auto out = alg.encode({.mode = MisState::Mode::kOut});
  core::Engine engine(g, alg, sched, core::uniform_configuration(3, out), 1);
  engine.step();
  for (core::NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(alg.decode(engine.state_of(v)).mode, MisState::Mode::kRestart);
  }
}

TEST(DetectMis, AdjacentInPairDetectedWhp) {
  const graph::Graph g = graph::path(2);
  const AlgMis alg({.diameter_bound = 1, .id_alphabet = 4});
  int detected = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    sched::SynchronousScheduler sched(2);
    core::Engine engine(
        g, alg, sched,
        {alg.encode({.mode = MisState::Mode::kIn, .id = 1}),
         alg.encode({.mode = MisState::Mode::kIn, .id = 1})},
        9000 + trial);
    bool restarted = false;
    // Per-round detection probability >= 1 - 1/k = 3/4.
    for (int t = 0; t < 40 && !restarted; ++t) {
      engine.step();
      restarted = any_restart(alg, engine.config());
    }
    if (restarted) ++detected;
  }
  EXPECT_EQ(detected, trials);
}

TEST(DetectMis, CorrectMisNeverRestarts) {
  // Soundness: a legitimate decided configuration runs forever restart-free.
  const graph::Graph g = graph::star(6);  // hub 0 + 5 leaves
  const AlgMis alg({.diameter_bound = 2});
  sched::SynchronousScheduler sched(6);
  core::Configuration c(6, alg.encode({.mode = MisState::Mode::kOut}));
  c[0] = alg.encode({.mode = MisState::Mode::kIn, .id = 1});
  core::Engine engine(g, alg, sched, c, 33);
  for (int t = 0; t < 500; ++t) {
    engine.step();
    ASSERT_FALSE(any_restart(alg, engine.config())) << "at step " << t;
    EXPECT_TRUE(mis_legitimate(alg, g, engine.config()));
  }
}

TEST(DetectMis, LeafMisOnStarIsAlsoStable) {
  // The complementary MIS on a star: all leaves IN, hub OUT.
  const graph::Graph g = graph::star(6);
  const AlgMis alg({.diameter_bound = 2});
  sched::SynchronousScheduler sched(6);
  core::Configuration c(6);
  c[0] = alg.encode({.mode = MisState::Mode::kOut});
  for (core::NodeId v = 1; v < 6; ++v) {
    c[v] = alg.encode(
        {.mode = MisState::Mode::kIn, .id = static_cast<int>(v % 4) + 1});
  }
  core::Engine engine(g, alg, sched, c, 44);
  for (int t = 0; t < 300; ++t) {
    engine.step();
    ASSERT_FALSE(any_restart(alg, engine.config())) << "at step " << t;
  }
}

TEST(DetectMis, StepDiscrepancyTriggersRestart) {
  // RandPhase's validity check: |step difference| > 1 across an edge.
  const graph::Graph g = graph::path(2);
  const AlgMis alg({.diameter_bound = 3});
  sched::SynchronousScheduler sched(2);
  MisState a;
  a.mode = MisState::Mode::kUndecided;
  a.step = 0;
  a.flag = false;
  MisState b = a;
  b.step = 4;
  core::Engine engine(g, alg, sched, {alg.encode(a), alg.encode(b)}, 3);
  engine.step();
  EXPECT_TRUE(any_restart(alg, engine.config()));
}

TEST(DetectMis, UndecidedNextToInJoinsOut) {
  const graph::Graph g = graph::path(2);
  const AlgMis alg({.diameter_bound = 1});
  sched::SynchronousScheduler sched(2);
  core::Engine engine(
      g, alg, sched,
      {alg.initial_state(),
       alg.encode({.mode = MisState::Mode::kIn, .id = 2})},
      5);
  engine.step();
  EXPECT_EQ(alg.decode(engine.state_of(0)).mode, MisState::Mode::kOut);
  EXPECT_EQ(alg.decode(engine.state_of(1)).mode, MisState::Mode::kIn);
}

TEST(DetectMis, RecoveryAfterMidRunFaultInjection) {
  // Stabilize, then scramble a third of the nodes (transient fault burst) and
  // verify the system re-stabilizes to a correct MIS.
  const graph::Graph g = graph::grid(3, 4);
  const int diam = static_cast<int>(graph::diameter(g));
  const AlgMis alg({.diameter_bound = diam});
  sched::SynchronousScheduler sched(12);
  util::Rng rng(55);
  core::Engine engine(
      g, alg, sched, core::uniform_configuration(12, alg.initial_state()), 55);
  auto legit = [&](const core::Configuration& c) {
    return mis_legitimate(alg, g, c);
  };
  ASSERT_TRUE(engine.run_until(legit, 20000).reached);

  for (core::NodeId v = 0; v < 12; v += 3) {
    engine.inject_state(v, rng.below(alg.state_count()));
  }
  EXPECT_TRUE(engine.run_until(legit, 20000).reached)
      << "no recovery after transient fault burst";
}

}  // namespace
}  // namespace ssau::mis
