// Exhaustive model-checking tests: on small instances, AlgAU provably
// self-stabilizes under EVERY fair daemon from EVERY configuration (no fair
// live-lock cycle, good set closed — the exhaustive forms of Thm 1.1 and
// Lem 2.10), while the Appendix-A design provably has a fair live-lock.
#include "analysis/model_check.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "unison/alg_au.hpp"
#include "unison/au_invariants.hpp"
#include "unison/baselines.hpp"
#include "unison/failed_au.hpp"

namespace ssau::analysis {
namespace {

TEST(ModelCheck, AlgAuSelfStabilizesOnEdgeExhaustively) {
  // path(2), D = 1: all 18^2 = 324 configurations x all 3 daemon moves.
  const graph::Graph g = graph::path(2);
  const unison::AlgAu alg(1);
  const auto r = model_check_convergence(
      alg, g,
      [&](const core::Configuration& c) {
        return unison::graph_good(alg.turns(), g, c);
      },
      {});
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.configurations, 324u);
  EXPECT_EQ(r.edges, 324u * 3);
  EXPECT_TRUE(r.always_converges) << "a fair live-lock exists?!";
  EXPECT_TRUE(r.target_closed) << "Lem 2.10 fails exhaustively?!";
}

TEST(ModelCheck, AlgAuSelfStabilizesOnTriangleExhaustively) {
  // complete(3), D = 1: 18^3 = 5832 configurations x 7 daemon moves.
  const graph::Graph g = graph::complete(3);
  const unison::AlgAu alg(1);
  const auto r = model_check_convergence(
      alg, g,
      [&](const core::Configuration& c) {
        return unison::graph_good(alg.turns(), g, c);
      },
      {});
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.configurations, 5832u);
  EXPECT_TRUE(r.always_converges);
  EXPECT_TRUE(r.target_closed);
}

TEST(ModelCheck, AlgAuSelfStabilizesOnPath3Exhaustively) {
  const graph::Graph g = graph::path(3);
  const unison::AlgAu alg(2);  // D = diam = 2: 30 states, 27000 configs
  const auto r = model_check_convergence(
      alg, g,
      [&](const core::Configuration& c) {
        return unison::graph_good(alg.turns(), g, c);
      },
      {});
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.configurations, 27000u);
  EXPECT_TRUE(r.always_converges);
  EXPECT_TRUE(r.target_closed);
}

TEST(ModelCheck, FailedAuHasAFairLivelockFromFigure2a) {
  // Reachable exploration from the Fig 2(a) configuration under central
  // daemons: a fair live-lock cycle must exist (Appendix A, exhaustively).
  const unison::FailedAu alg(2, {.c = 2});
  const graph::Graph g = graph::cycle(8);
  ModelCheckOptions opts;
  opts.single_activations_only = true;
  opts.max_configurations = 500000;
  const auto r = model_check_convergence(
      alg, g,
      [&](const core::Configuration& c) { return alg.legitimate(g, c); },
      {unison::figure2a_configuration(alg)}, opts);
  ASSERT_TRUE(r.complete) << "exploration capped at " << r.configurations;
  EXPECT_FALSE(r.always_converges)
      << "no fair live-lock found — Appendix A refuted?!";
  EXPECT_FALSE(r.livelock_witness.empty());
}

TEST(ModelCheck, AlgAuHasNoLivelockOnTornCycleExhaustively) {
  // The contrast to the Appendix-A live-lock, checked exhaustively: AlgAU
  // on a torn cycle explored under central daemons — no fair cycle avoids
  // the good set. (The 8-cycle's non-good region exceeds memory; the
  // 4-cycle with its correct bound D = 2 is fully explorable.)
  const unison::AlgAu alg(2);
  const graph::Graph g = graph::cycle(4);
  ModelCheckOptions opts;
  opts.single_activations_only = true;
  opts.max_configurations = 1500000;
  const auto r = model_check_convergence(
      alg, g,
      [&](const core::Configuration& c) {
        return unison::graph_good(alg.turns(), g, c);
      },
      {unison::au_config_tear(alg, 4)}, opts);
  ASSERT_TRUE(r.complete) << "exploration capped at " << r.configurations;
  EXPECT_TRUE(r.always_converges);
  EXPECT_TRUE(r.target_closed);
}

TEST(ModelCheck, MinPlusOneConvergesOnTinyInstance) {
  const unison::MinPlusOneUnison alg(6);  // clocks 0..5 (capped domain)
  const graph::Graph g = graph::path(2);
  const auto r = model_check_convergence(
      alg, g,
      [&](const core::Configuration& c) { return alg.legitimate(g, c); }, {});
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.configurations, 36u);
  EXPECT_TRUE(r.always_converges);
  // Note: the saturated cap makes the top clock absorbing, which keeps the
  // target closed on this toy domain.
  EXPECT_TRUE(r.target_closed);
}

TEST(ModelCheck, RejectsOversizedGraphs) {
  const unison::AlgAu alg(1);
  const graph::Graph g = graph::cycle(25);
  EXPECT_THROW(model_check_convergence(
                   alg, g,
                   [](const core::Configuration&) { return true; }, {}),
               std::invalid_argument);
}

TEST(ModelCheck, CapAbortsIncomplete) {
  const unison::AlgAu alg(2);
  const graph::Graph g = graph::path(3);
  ModelCheckOptions opts;
  opts.max_configurations = 100;  // 30^3 = 27000 needed
  const auto r = model_check_convergence(
      alg, g,
      [&](const core::Configuration& c) {
        return unison::graph_good(alg.turns(), g, c);
      },
      {}, opts);
  EXPECT_FALSE(r.complete);
}

}  // namespace
}  // namespace ssau::analysis
