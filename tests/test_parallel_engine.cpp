// Sharded multi-threaded synchronous kernel: partition correctness and the
// engine's bit-identity guarantee — the parallel kernel at every thread
// count must walk exactly the trajectory of the serial fast path and the
// legacy oracle (configurations, time, rounds, activation counts, and
// listener streams), for deterministic and randomized automata alike, under
// full-activation and asynchronous schedulers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/parallel_engine.hpp"
#include "core/shard.hpp"
#include "graph/generators.hpp"
#include "le/alg_le.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"
#include "sync/simple_sync_algs.hpp"
#include "sync/synchronizer.hpp"
#include "unison/alg_au.hpp"
#include "unison/au_invariants.hpp"
#include "util/rng.hpp"

namespace ssau {
namespace {

using core::EngineOptions;
using core::Shard;

// --- sharding ---------------------------------------------------------------

void expect_valid_partition(const graph::Graph& g,
                            const std::vector<Shard>& shards,
                            unsigned requested) {
  ASSERT_FALSE(shards.empty());
  EXPECT_LE(shards.size(), static_cast<std::size_t>(requested));
  EXPECT_LE(shards.size(), static_cast<std::size_t>(g.num_nodes()));
  core::NodeId expected_begin = 0;
  for (const Shard& s : shards) {
    EXPECT_EQ(s.begin, expected_begin);
    EXPECT_GT(s.end, s.begin) << "empty shard";
    expected_begin = s.end;
  }
  EXPECT_EQ(expected_begin, g.num_nodes());
}

TEST(Shards, PartitionContiguousNonEmptyCovering) {
  util::Rng rng(5);
  for (const core::NodeId n : {1u, 2u, 7u, 64u, 500u}) {
    const graph::Graph g = graph::random_connected(n, 0.05, rng);
    for (const unsigned k : {1u, 2u, 3u, 8u, 64u, 1000u}) {
      expect_valid_partition(g, core::make_shards(g, k), k);
    }
  }
}

TEST(Shards, DegreeWeightedBalance) {
  // A star graph: the hub carries half the total weight, so with 4 shards a
  // node-count split would give the hub shard ~2x the ideal weight of every
  // other; the degree-weighted split must keep every shard at or below
  // ideal + heaviest node.
  util::Rng rng(7);
  const graph::Graph g = graph::random_connected(400, 0.02, rng);
  const unsigned k = 4;
  const std::vector<Shard> shards = core::make_shards(g, k);
  ASSERT_EQ(shards.size(), k);
  std::uint64_t total = 0;
  std::uint64_t heaviest = 0;
  for (core::NodeId v = 0; v < g.num_nodes(); ++v) {
    total += g.degree(v) + 1;
    heaviest = std::max<std::uint64_t>(heaviest, g.degree(v) + 1);
  }
  for (const Shard& s : shards) {
    std::uint64_t w = 0;
    for (core::NodeId v = s.begin; v < s.end; ++v) w += g.degree(v) + 1;
    EXPECT_LE(w, total / k + heaviest)
        << "shard [" << s.begin << "," << s.end << ") over weight";
  }
}

TEST(Shards, MoreShardsThanNodesClamps) {
  const graph::Graph g = graph::path(3);
  const std::vector<Shard> shards = core::make_shards(g, 16);
  ASSERT_EQ(shards.size(), 3u);
  for (const Shard& s : shards) EXPECT_EQ(s.size(), 1u);
}

TEST(Shards, WeightedIndexRangePartition) {
  // The sparse-activation kernel partitions [0, |A_t|) of the activation
  // list, not [0, n): the same contiguity/coverage invariants must hold for
  // an arbitrary weight callback over an arbitrary count.
  std::vector<Shard> shards;
  for (const core::NodeId count : {1u, 2u, 5u, 63u, 512u}) {
    for (const unsigned k : {1u, 2u, 4u, 8u, 600u}) {
      core::make_weighted_shards_into(shards, count, k, [&](core::NodeId i) {
        return std::uint64_t{1} + (i % 7);
      });
      ASSERT_FALSE(shards.empty());
      EXPECT_LE(shards.size(), static_cast<std::size_t>(k));
      EXPECT_LE(shards.size(), static_cast<std::size_t>(count));
      core::NodeId expected_begin = 0;
      for (const Shard& s : shards) {
        EXPECT_EQ(s.begin, expected_begin);
        EXPECT_GT(s.end, s.begin) << "empty shard";
        expected_begin = s.end;
      }
      EXPECT_EQ(expected_begin, count);
    }
  }
  // count == 0 (no activations) produces no shards, not a bogus [0, 0).
  core::make_weighted_shards_into(shards, 0, 4,
                                  [](core::NodeId) { return 1; });
  EXPECT_TRUE(shards.empty());
}

TEST(Shards, WeightedIndexRangeBalance) {
  // A heavily skewed weight profile (one hub index) must not overload any
  // shard beyond ideal + heaviest, mirroring the node-partition guarantee.
  std::vector<Shard> shards;
  const core::NodeId count = 256;
  const auto weight = [](core::NodeId i) {
    return i == 17 ? std::uint64_t{200} : std::uint64_t{2};
  };
  std::uint64_t total = 0;
  std::uint64_t heaviest = 0;
  for (core::NodeId i = 0; i < count; ++i) {
    total += weight(i);
    heaviest = std::max(heaviest, weight(i));
  }
  const unsigned k = 4;
  core::make_weighted_shards_into(shards, count, k, weight);
  ASSERT_EQ(shards.size(), k);
  for (const Shard& s : shards) {
    std::uint64_t w = 0;
    for (core::NodeId i = s.begin; i < s.end; ++i) w += weight(i);
    EXPECT_LE(w, total / k + heaviest)
        << "shard [" << s.begin << "," << s.end << ") over weight";
  }
}

// --- worker pool ------------------------------------------------------------

TEST(ParallelEnginePool, RunsEveryShardEveryEpoch) {
  core::ParallelEngine pool({{0, 10}, {10, 25}, {25, 30}});
  EXPECT_EQ(pool.shard_count(), 3u);
  std::vector<int> hits(3, 0);
  std::vector<core::NodeId> begins(3, 0);
  for (int epoch = 0; epoch < 50; ++epoch) {
    pool.run([&](const Shard& s, unsigned idx) {
      ++hits[idx];  // each index touched by exactly one worker per epoch
      begins[idx] = s.begin;
    });
  }
  EXPECT_EQ(hits, (std::vector<int>{50, 50, 50}));
  EXPECT_EQ(begins, (std::vector<core::NodeId>{0, 10, 25}));
}

TEST(ParallelEnginePool, PerEpochShardListOverridesFixedPartition) {
  // The sparse-activation kernel passes a fresh shard list every epoch; the
  // pool must run exactly that list, and workers beyond the epoch's shard
  // count must sit the epoch out without disturbing the barrier.
  core::ParallelEngine pool({{0, 10}, {10, 20}, {20, 30}, {30, 40}});
  std::vector<int> hits(4, 0);
  std::vector<Shard> seen(4);
  const std::vector<Shard> two = {{0, 7}, {7, 13}};
  for (int epoch = 0; epoch < 50; ++epoch) {
    pool.run(two, [&](const Shard& s, unsigned idx) {
      ++hits[idx];
      seen[idx] = s;
    });
  }
  EXPECT_EQ(hits, (std::vector<int>{50, 50, 0, 0}));
  EXPECT_EQ(seen[0].begin, 0u);
  EXPECT_EQ(seen[0].end, 7u);
  EXPECT_EQ(seen[1].begin, 7u);
  EXPECT_EQ(seen[1].end, 13u);

  // Mixed fixed-partition and per-epoch runs interleave cleanly.
  pool.run([&](const Shard& s, unsigned idx) {
    ++hits[idx];
    seen[idx] = s;
  });
  EXPECT_EQ(hits, (std::vector<int>{51, 51, 1, 1}));
  EXPECT_EQ(seen[3].begin, 30u);
  EXPECT_EQ(seen[3].end, 40u);

  // An over-long or empty per-epoch list is rejected.
  const std::vector<Shard> five(5, Shard{0, 1});
  EXPECT_THROW(pool.run(five, [](const Shard&, unsigned) {}),
               std::invalid_argument);
  EXPECT_THROW(pool.run(std::vector<Shard>{}, [](const Shard&, unsigned) {}),
               std::invalid_argument);
}

TEST(ParallelEnginePool, ShardExceptionCompletesBarrierAndRethrows) {
  // A throwing ShardFn must neither terminate a worker nor let the caller
  // unwind while shards are still executing: the epoch completes its
  // barrier, then the first captured exception is rethrown on the caller.
  core::ParallelEngine pool({{0, 8}, {8, 16}, {16, 24}});
  std::atomic<int> completed{0};
  for (int epoch = 0; epoch < 20; ++epoch) {
    // Alternate which shard throws — caller-run shard 0 included.
    const unsigned thrower = static_cast<unsigned>(epoch % 3);
    EXPECT_THROW(
        pool.run([&](const Shard&, unsigned idx) {
          if (idx == thrower) throw std::runtime_error("shard failure");
          ++completed;
        }),
        std::runtime_error);
  }
  EXPECT_EQ(completed.load(), 20 * 2);  // the two non-throwing shards ran
  // The pool remains usable after failed epochs.
  std::vector<int> hits(3, 0);
  pool.run([&](const Shard&, unsigned idx) { ++hits[idx]; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelEnginePool, ResolveThreadCount) {
  EXPECT_EQ(core::ParallelEngine::resolve_thread_count(1), 1u);
  EXPECT_EQ(core::ParallelEngine::resolve_thread_count(6), 6u);
  EXPECT_GE(core::ParallelEngine::resolve_thread_count(0), 1u);  // auto
}

// --- engine bit-identity ----------------------------------------------------

/// Runs a reference engine (serial fast path) and one engine per thread count
/// in lockstep; every aspect of the engine state must stay bit-identical.
/// Also runs the legacy oracle when `against_legacy`. `sparse_threshold`
/// forces the sparse-activation kernel onto small test instances (the
/// default production threshold would keep them serial).
void expect_thread_count_invariance(const graph::Graph& g,
                                    const core::Automaton& alg,
                                    const core::Configuration& initial,
                                    const std::string& sched_name,
                                    std::uint64_t seed, int steps,
                                    bool against_legacy = true,
                                    std::size_t sparse_threshold = 1024) {
  auto ref_sched = sched::make_scheduler(sched_name, g);
  core::Engine reference(g, alg, *ref_sched, initial, seed,
                         EngineOptions{.thread_count = 1});

  struct Candidate {
    std::unique_ptr<sched::Scheduler> sched;
    std::unique_ptr<core::Engine> engine;
    std::string label;
  };
  std::vector<Candidate> candidates;
  for (const unsigned threads : {0u, 2u, 4u, 8u}) {
    Candidate c;
    c.sched = sched::make_scheduler(sched_name, g);
    c.engine = std::make_unique<core::Engine>(
        g, alg, *c.sched, initial, seed,
        EngineOptions{.thread_count = threads,
                      .sparse_activation_threshold = sparse_threshold});
    c.label = "threads=" + std::to_string(threads);
    candidates.push_back(std::move(c));
  }
  if (against_legacy) {
    Candidate c;
    c.sched = sched::make_scheduler(sched_name, g);
    c.engine = std::make_unique<core::Engine>(
        g, alg, *c.sched, initial, seed, EngineOptions{.fast_path = false});
    c.label = "legacy";
    candidates.push_back(std::move(c));
  }

  for (int s = 0; s < steps; ++s) {
    reference.step();
    for (Candidate& c : candidates) {
      c.engine->step();
      ASSERT_EQ(c.engine->config(), reference.config())
          << c.label << " diverged at step " << s << " (" << sched_name << ")";
      ASSERT_EQ(c.engine->time(), reference.time()) << c.label;
      ASSERT_EQ(c.engine->rounds_completed(), reference.rounds_completed())
          << c.label;
      ASSERT_EQ(c.engine->round_index_now(), reference.round_index_now())
          << c.label;
    }
  }
  for (core::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (Candidate& c : candidates) {
      ASSERT_EQ(c.engine->activation_count(v), reference.activation_count(v))
          << c.label << " activation count drift at node " << v;
    }
  }
}

TEST(ParallelEngine, AlgAuMaskKernelBitIdentical) {
  // D = 2 (|Q| = 30): the native AlgAu bitmask kernel runs sharded.
  const unison::AlgAu alg(2);
  util::Rng rng(41);
  const graph::Graph g = graph::random_connected(500, 0.01, rng);
  for (const char* kind : {"tear", "all-faulty", "random"}) {
    const core::Configuration c0 =
        unison::au_adversarial_configuration(kind, alg, g, rng);
    expect_thread_count_invariance(g, alg, c0, "synchronous", 211, 40);
  }
}

TEST(ParallelEngine, AlgAuViewKernelBitIdentical) {
  // D = 5 (|Q| = 66 > 64): the sorted-span SignalView path runs sharded.
  const unison::AlgAu alg(5);
  util::Rng rng(43);
  const graph::Graph g = graph::random_connected(200, 0.02, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);
  expect_thread_count_invariance(g, alg, c0, "synchronous", 223, 40);
}

TEST(ParallelEngine, LazyMemoCompiledKernelBitIdentical) {
  // Deterministic, 14 < |Q| <= 64, no native kernel: the engine compiles a
  // lazily memoized table — each shard must get its own memo instance.
  const sync::MinPropagation minprop(32);
  util::Rng rng(47);
  const graph::Graph g = graph::random_connected(300, 0.02, rng);
  const core::Configuration c0 =
      core::random_configuration(minprop, g.num_nodes(), rng);
  expect_thread_count_invariance(g, minprop, c0, "synchronous", 227, 30);
}

TEST(ParallelEngine, AlgMisBitIdenticalSynchronousAndAsync) {
  // Randomized: per-node counter-based rng streams keep every thread count
  // (and the legacy oracle) on the same trajectory; the uniform-single
  // scheduler additionally pins the scheduler's own rng stream.
  const mis::AlgMis alg({.diameter_bound = 2});
  util::Rng rng(53);
  const graph::Graph g = graph::random_connected(150, 0.04, rng);
  const core::Configuration c0 =
      mis::mis_adversarial_configuration("random", alg, g, rng);
  expect_thread_count_invariance(g, alg, c0, "synchronous", 229, 40);
  expect_thread_count_invariance(g, alg, c0, "uniform-single", 229, 600);
}

TEST(ParallelEngine, AlgLeBitIdenticalSynchronousAndAsync) {
  const le::AlgLe alg({.diameter_bound = 2});
  util::Rng rng(59);
  const graph::Graph g = graph::random_connected(120, 0.05, rng);
  const core::Configuration c0 =
      le::le_adversarial_configuration("random", alg, g, rng);
  expect_thread_count_invariance(g, alg, c0, "synchronous", 233, 40);
  expect_thread_count_invariance(g, alg, c0, "uniform-single", 233, 600);
}

// --- sparse-activation kernel ----------------------------------------------

TEST(SparseActivationKernel, AlgAuLaggardBitIdentical) {
  // The laggard daemon activates n-1 nodes per step (then one): |A_t| sits
  // above the forced threshold, so phase 1 runs sharded over the activation
  // list; trajectories must match the serial fast path and legacy oracle at
  // every thread count.
  const unison::AlgAu alg(2);
  util::Rng rng(71);
  const graph::Graph g = graph::random_connected(300, 0.015, rng);
  for (const char* kind : {"tear", "random"}) {
    const core::Configuration c0 =
        unison::au_adversarial_configuration(kind, alg, g, rng);
    expect_thread_count_invariance(g, alg, c0, "laggard", 307, 60,
                                   /*against_legacy=*/true,
                                   /*sparse_threshold=*/2);
  }
}

TEST(SparseActivationKernel, AlgAuViewKernelLaggard) {
  // D = 5 (|Q| = 66 > 64): the sparse kernel's sorted-span SignalView branch.
  const unison::AlgAu alg(5);
  util::Rng rng(73);
  const graph::Graph g = graph::random_connected(150, 0.03, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);
  expect_thread_count_invariance(g, alg, c0, "laggard", 311, 60,
                                 /*against_legacy=*/true,
                                 /*sparse_threshold=*/2);
}

TEST(SparseActivationKernel, RandomSubsetBitIdentical) {
  // |A_t| varies randomly around n/2, straddling the threshold: steps above
  // it shard, steps below it fall back to the serial path — the mix must
  // still be bit-identical, and the scheduler's rng stream (consumed on the
  // serial draw) must be unperturbed by the kernel choice.
  const unison::AlgAu au(2);
  const mis::AlgMis mis({.diameter_bound = 2});
  util::Rng rng(79);
  const graph::Graph g = graph::random_connected(200, 0.02, rng);
  const core::Configuration au0 =
      unison::au_adversarial_configuration("random", au, g, rng);
  const core::Configuration mis0 =
      mis::mis_adversarial_configuration("random", mis, g, rng);
  expect_thread_count_invariance(g, au, au0, "random-subset", 313, 80,
                                 /*against_legacy=*/true,
                                 /*sparse_threshold=*/100);
  // Randomized MIS: per-node rng streams must survive sharded phase 1.
  expect_thread_count_invariance(g, mis, mis0, "random-subset", 317, 80,
                                 /*against_legacy=*/true,
                                 /*sparse_threshold=*/100);
}

TEST(SparseActivationKernel, WaveBitIdenticalIncludingDisconnected) {
  // BFS-layer activation sets of wildly varying size; the disconnected graph
  // exercises the multi-component wave daemon through the sparse kernel (on
  // a disconnected G the daemon must still activate every node, or rounds
  // never close — guarded below by the round-progress check).
  const unison::AlgAu alg(2);
  util::Rng rng(83);
  const graph::Graph connected = graph::random_connected(240, 0.02, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, connected, rng);
  expect_thread_count_invariance(connected, alg, c0, "wave", 331, 80,
                                 /*against_legacy=*/true,
                                 /*sparse_threshold=*/2);

  // Two random components + an isolated node, stitched into one node range.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  const graph::Graph a = graph::random_connected(90, 0.05, rng);
  const graph::Graph b = graph::random_connected(60, 0.07, rng);
  for (const auto& [u, v] : a.edges()) edges.emplace_back(u, v);
  for (const auto& [u, v] : b.edges()) edges.emplace_back(u + 90, v + 90);
  const graph::Graph disconnected(151, std::move(edges));
  ASSERT_FALSE(disconnected.connected());
  const core::Configuration d0 = unison::au_adversarial_configuration(
      "random", alg, disconnected, rng);
  expect_thread_count_invariance(disconnected, alg, d0, "wave", 337, 80,
                                 /*against_legacy=*/true,
                                 /*sparse_threshold=*/2);

  // Fairness through the engine: rounds actually close under the wave daemon
  // on the disconnected graph (every node gets activated every cycle).
  auto sched = sched::make_scheduler("wave", disconnected);
  core::Engine engine(disconnected, alg, *sched, d0, 337,
                      EngineOptions{.thread_count = 4,
                                    .sparse_activation_threshold = 2});
  engine.run_rounds(5);
  EXPECT_GE(engine.rounds_completed(), 5u);
  for (graph::NodeId v = 0; v < disconnected.num_nodes(); ++v) {
    EXPECT_GE(engine.activation_count(v), 5u) << "node " << v << " starved";
  }
}

TEST(SparseActivationKernel, ZeroThresholdRunsEveryStepWithoutThrowing) {
  // sparse_activation_threshold = 0 ("always shard") must not push a
  // degenerate empty activation set into the pool (an empty per-epoch shard
  // list is rejected there); the mix of single-node and bulk laggard steps
  // must run to completion and stay on the reference trajectory.
  const unison::AlgAu alg(2);
  util::Rng rng(97);
  const graph::Graph g = graph::random_connected(80, 0.05, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);
  auto sched = sched::make_scheduler("laggard", g);
  core::Engine engine(g, alg, *sched, c0, 353,
                      EngineOptions{.thread_count = 4,
                                    .sparse_activation_threshold = 0});
  auto ref_sched = sched::make_scheduler("laggard", g);
  core::Engine reference(g, alg, *ref_sched, c0, 353,
                         EngineOptions{.thread_count = 1});
  for (int s = 0; s < 100; ++s) {
    engine.step();
    reference.step();
    ASSERT_EQ(engine.config(), reference.config()) << "step " << s;
  }
  EXPECT_EQ(engine.rounds_completed(), reference.rounds_completed());
}

TEST(SparseActivationKernel, ListenerStreamBitIdentical) {
  // Workers log per-shard transitions during sharded phase 1; the replayed
  // stream (activation-list order, pre-step signals) must match the serial
  // fast path and the legacy oracle exactly.
  const unison::AlgAu alg(2);
  util::Rng rng(89);
  const graph::Graph g = graph::random_connected(140, 0.04, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("tear", alg, g, rng);

  struct Event {
    core::NodeId v;
    core::StateId from, to;
    core::Time t;
    bool operator==(const Event&) const = default;
  };
  auto run = [&](EngineOptions options) {
    auto sched = sched::make_scheduler("laggard", g);
    core::Engine engine(g, alg, *sched, c0, 347, options);
    std::vector<Event> events;
    std::vector<core::Signal> signals;
    engine.set_transition_listener(
        [&](core::NodeId v, core::StateId from, core::StateId to,
            const core::Signal& sig, core::Time t) {
          events.push_back({v, from, to, t});
          signals.push_back(sig);
        });
    for (int s = 0; s < 60; ++s) engine.step();
    return std::make_pair(events, signals);
  };

  const auto [serial_events, serial_signals] =
      run(EngineOptions{.thread_count = 1, .sparse_activation_threshold = 2});
  ASSERT_FALSE(serial_events.empty());
  for (const unsigned threads : {2u, 4u, 8u}) {
    const auto [events, signals] =
        run(EngineOptions{.thread_count = threads,
                          .sparse_activation_threshold = 2});
    EXPECT_EQ(events, serial_events) << "threads=" << threads;
    EXPECT_EQ(signals, serial_signals) << "threads=" << threads;
  }
  const auto [legacy_events, legacy_signals] =
      run(EngineOptions{.fast_path = false});
  EXPECT_EQ(legacy_events, serial_events);
  EXPECT_EQ(legacy_signals, serial_signals);
}

TEST(ParallelEngine, ListenerStreamBitIdentical) {
  // Workers log transitions per shard and the engine replays them in node
  // order: the observed (v, from, to, signal, t) stream must match the
  // serial fast path and the legacy oracle exactly.
  const unison::AlgAu alg(2);
  util::Rng rng(61);
  const graph::Graph g = graph::random_connected(160, 0.03, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("tear", alg, g, rng);

  struct Event {
    core::NodeId v;
    core::StateId from, to;
    core::Time t;
    bool operator==(const Event&) const = default;
  };
  auto run = [&](EngineOptions options) {
    auto sched = sched::make_scheduler("synchronous", g);
    core::Engine engine(g, alg, *sched, c0, 271, options);
    std::vector<Event> events;
    std::vector<core::Signal> signals;
    engine.set_transition_listener(
        [&](core::NodeId v, core::StateId from, core::StateId to,
            const core::Signal& sig, core::Time t) {
          events.push_back({v, from, to, t});
          signals.push_back(sig);
        });
    for (int s = 0; s < 30; ++s) engine.step();
    return std::make_pair(events, signals);
  };

  const auto [serial_events, serial_signals] =
      run(EngineOptions{.thread_count = 1});
  ASSERT_FALSE(serial_events.empty());
  for (const unsigned threads : {2u, 4u, 8u}) {
    const auto [events, signals] = run(EngineOptions{.thread_count = threads});
    EXPECT_EQ(events, serial_events) << "threads=" << threads;
    EXPECT_EQ(signals, serial_signals) << "threads=" << threads;
  }
  const auto [legacy_events, legacy_signals] =
      run(EngineOptions{.fast_path = false});
  EXPECT_EQ(legacy_events, serial_events);
  EXPECT_EQ(legacy_signals, serial_signals);
}

TEST(ParallelEngine, ShardCountReflectsRouting) {
  const unison::AlgAu alg(2);
  util::Rng rng(67);
  const graph::Graph g = graph::random_connected(64, 0.08, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);

  sched::SynchronousScheduler sync_sched(g.num_nodes());
  core::Engine sharded(g, alg, sync_sched, c0, 1,
                       EngineOptions{.thread_count = 4});
  EXPECT_EQ(sharded.shard_count(), 4u);

  core::Engine serial(g, alg, sync_sched, c0, 1,
                      EngineOptions{.thread_count = 1});
  EXPECT_EQ(serial.shard_count(), 1u);

  // Automata with mutable per-call scratch (parallel_safe() false, e.g. the
  // synchronizer product) never shard — the engine silently stays serial.
  const sync::Blinker blinker;
  const sync::Synchronizer synced(blinker, 1);
  core::Engine synced_engine(
      g, synced, sync_sched,
      core::uniform_configuration(g.num_nodes(), 0), 1,
      EngineOptions{.thread_count = 4});
  EXPECT_EQ(synced_engine.shard_count(), 1u);

  // Single-node daemons never shard, whatever thread_count asks for: their
  // max_activation_hint() (1) can never reach the sparse threshold.
  auto async_sched = sched::make_scheduler("uniform-single", g);
  core::Engine async_engine(g, alg, *async_sched, c0, 1,
                            EngineOptions{.thread_count = 4});
  EXPECT_EQ(async_engine.shard_count(), 1u);

  // Large-set daemons shard once the threshold is within their hint...
  auto laggard_sched = sched::make_scheduler("laggard", g);
  core::Engine sparse_engine(
      g, alg, *laggard_sched, c0, 1,
      EngineOptions{.thread_count = 4, .sparse_activation_threshold = 2});
  EXPECT_EQ(sparse_engine.shard_count(), 4u);

  // ...but stay serial (and spawn no workers) when the hint can't reach it
  // (here: n - 1 = 63 < the default 1024 threshold).
  auto laggard_serial = sched::make_scheduler("laggard", g);
  core::Engine sparse_serial(g, alg, *laggard_serial, c0, 1,
                             EngineOptions{.thread_count = 4});
  EXPECT_EQ(sparse_serial.shard_count(), 1u);

  // Auto (0) resolves to hardware concurrency, at least one shard.
  core::Engine auto_engine(g, alg, sync_sched, c0, 1,
                           EngineOptions{.thread_count = 0});
  EXPECT_GE(auto_engine.shard_count(), 1u);

  // run_until drives the sharded kernel to a legitimate configuration (all
  // nodes able with adjacent clocks).
  const auto outcome = sharded.run_until(
      [&](const core::Configuration& c) {
        for (const core::StateId q : c) {
          if (!alg.is_output(q)) return false;
        }
        return unison::au_safety_holds(alg.turns(), g, c);
      },
      5000);
  EXPECT_TRUE(outcome.reached);
}

}  // namespace
}  // namespace ssau
