// Parameterized sweeps over the algorithm knobs the paper leaves to the
// designer: the identifier alphabet k_id (detection probability 1 - 1/k) and
// the coin bias p0 (random prefix/stage length), plus diameter-bound slack.
// Correctness must hold across the whole grid; only performance may shift.
#include <gtest/gtest.h>

#include <tuple>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "le/alg_le.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"
#include "unison/alg_au.hpp"
#include "unison/au_monitor.hpp"

namespace ssau {
namespace {

class LeParams : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(LeParams, ElectsOneLeaderAcrossTheGrid) {
  const auto& [k_id, p0] = GetParam();
  const graph::Graph g = graph::complete(6);
  const le::AlgLe alg({.diameter_bound = 1, .id_alphabet = k_id, .p0 = p0});
  int ok = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed * 997);
    sched::SynchronousScheduler sched(6);
    core::Engine engine(g, alg, sched,
                        core::random_configuration(alg, 6, rng), seed);
    const auto outcome = engine.run_until(
        [&](const core::Configuration& c) {
          return le::le_legitimate(alg, g, c);
        },
        300000);
    if (outcome.reached) ++ok;
  }
  EXPECT_GE(ok, 2) << "k_id=" << k_id << " p0=" << p0;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LeParams,
    ::testing::Combine(::testing::Values(2, 4, 16),
                       ::testing::Values(0.2, 0.5, 0.8)));

class MisParams : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MisParams, ComputesCorrectMisAcrossTheGrid) {
  const auto& [k_id, p0] = GetParam();
  const graph::Graph g = graph::cycle(6);
  const mis::AlgMis alg(
      {.diameter_bound = 3, .id_alphabet = k_id, .p0 = p0});
  int ok = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed * 1009);
    sched::SynchronousScheduler sched(6);
    core::Engine engine(g, alg, sched,
                        core::random_configuration(alg, 6, rng), seed);
    const auto outcome = engine.run_until(
        [&](const core::Configuration& c) {
          return mis::mis_legitimate(alg, g, c);
        },
        300000);
    if (outcome.reached) ++ok;
  }
  EXPECT_GE(ok, 2) << "k_id=" << k_id << " p0=" << p0;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MisParams,
    ::testing::Combine(::testing::Values(2, 8, 16),
                       ::testing::Values(0.15, 0.3, 0.6)));

class AuSlack : public ::testing::TestWithParam<int> {};

TEST_P(AuSlack, StabilizesWithAnyDiameterSlack) {
  // The algorithm requires diam(G) <= D; any slack must be tolerated (at a
  // state-space cost of 12*slack).
  const int slack = GetParam();
  const graph::Graph g = graph::grid(2, 3);
  const int diam = static_cast<int>(graph::diameter(g));
  const unison::AlgAu alg(diam + slack);
  util::Rng rng(slack * 131 + 7);
  auto sched = sched::make_scheduler("uniform-single", g);
  core::Engine engine(g, alg, *sched,
                      unison::au_adversarial_configuration("random", alg, g,
                                                           rng),
                      slack + 1);
  const auto k = static_cast<std::uint64_t>(alg.turns().k());
  const auto outcome = unison::run_to_good(engine, alg, 60 * k * k * k + 400);
  ASSERT_TRUE(outcome.reached) << "slack " << slack;
  const auto report = unison::verify_post_stabilization(engine, alg, 40);
  EXPECT_TRUE(report.safety_ok);
  // Liveness is stated against the bound D (ticks >= rounds - D with the
  // configured D, not the true diameter).
  EXPECT_TRUE(report.liveness_ok);
}

INSTANTIATE_TEST_SUITE_P(Slacks, AuSlack, ::testing::Values(0, 1, 2, 5));

TEST(ParamValidation, ConstantStateInterpretation) {
  // §1.3: with D regarded as a fixed parameter the state spaces are
  // constants. Spot the actual constants for D = 2.
  EXPECT_EQ(unison::AlgAu(2).state_count(), 30u);
  EXPECT_EQ(le::AlgLe({.diameter_bound = 2, .id_alphabet = 4}).state_count(),
            96u + 30u + 5u);  // 32E + 2E(k+1) + (2D+1), E = 3
  EXPECT_EQ(
      mis::AlgMis({.diameter_bound = 2, .id_alphabet = 8}).state_count(),
      16u * 5 + 8 + 1 + 5);
}

}  // namespace
}  // namespace ssau
