// Cache-aware reordering: the graph::reorder module's contracts (bijection,
// adjacency preservation, composition, the locality metric, and the
// never-touch-edges() guarantee) plus the engine-level permutation-
// equivalence differential suite — a reordered engine must walk the
// trajectory of an unreordered engine over the SAME internal layout, with
// every public id translated at the boundary. The oracle construction:
//
//   subject   = Engine over reorder_graph(g0), driven through USER ids
//   baseline  = Engine over a plain graph with the IDENTICAL internal CSR
//               (rebuilt from the subject graph's neighbor spans, no
//               relabelling attached) and the hand-permuted C_0
//
// Same seed, same scheduler kind, same options: every kernel sees the same
// layout, the scheduler stream and the (seed, internal node, activation)
// draw streams coincide, so the two engines are bit-identical internally —
// including randomized automata — and the subject's user-space observables
// must equal the baseline's observables mapped through the permutation.
#include "graph/reorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "core/adversary.hpp"
#include "core/command_log.hpp"
#include "core/engine.hpp"
#include "core/snapshot.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "le/alg_le.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"
#include "unison/alg_au.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace ssau {
namespace {

using core::Configuration;
using core::Engine;
using core::EngineOptions;
using core::ReorderMode;
using core::SignalFieldMode;
using graph::Graph;
using graph::NodeId;
using graph::ReorderPolicy;

// --- reorder module ----------------------------------------------------------

Graph random_graph(NodeId n, double avg_degree, std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::random_connected(n, avg_degree / static_cast<double>(n), rng);
}

void expect_permutation(const std::vector<NodeId>& perm, NodeId n) {
  ASSERT_EQ(perm.size(), n);
  std::vector<std::uint8_t> seen(n, 0);
  for (const NodeId p : perm) {
    ASSERT_LT(p, n);
    EXPECT_EQ(seen[p], 0);
    seen[p] = 1;
  }
}

TEST(Reorder, PermutationIsBijective) {
  const Graph g = random_graph(500, 6.0, 1);
  for (const ReorderPolicy policy :
       {ReorderPolicy::kBfs, ReorderPolicy::kDegree}) {
    expect_permutation(reorder_permutation(g, policy), g.num_nodes());
  }
}

TEST(Reorder, ReorderedGraphIsIsomorphicUnderThePermutation) {
  const Graph g = random_graph(300, 5.0, 2);
  for (const ReorderPolicy policy :
       {ReorderPolicy::kBfs, ReorderPolicy::kDegree}) {
    const auto perm = reorder_permutation(g, policy);
    const Graph r = reorder_graph(g, perm);
    ASSERT_EQ(r.num_nodes(), g.num_nodes());
    ASSERT_EQ(r.num_edges(), g.num_edges());
    ASSERT_TRUE(r.reordered());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(r.degree(perm[v]), g.degree(v));
      for (const NodeId u : g.neighbors(v)) {
        EXPECT_TRUE(r.has_edge(perm[v], perm[u]));
      }
      // Source was identity-layout, so user id v sits at internal perm[v].
      EXPECT_EQ(r.to_internal(v), perm[v]);
      EXPECT_EQ(r.to_user(perm[v]), v);
    }
  }
}

TEST(Reorder, RepeatedReordersComposeAndKeepUserIdsStable) {
  const Graph g = random_graph(200, 5.0, 3);
  const Graph once = reorder_graph(g, ReorderPolicy::kDegree);
  const Graph twice = reorder_graph(once, ReorderPolicy::kBfs);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // User id v still denotes the original node: its degree is invariant
    // and its neighborhood maps across both relabellings.
    EXPECT_EQ(twice.degree(twice.to_internal(v)), g.degree(v));
    for (const NodeId u : g.neighbors(v)) {
      EXPECT_TRUE(
          twice.has_edge(twice.to_internal(v), twice.to_internal(u)));
    }
    EXPECT_EQ(twice.to_user(twice.to_internal(v)), v);
  }
}

TEST(Reorder, RejectsNonPermutations) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(reorder_graph(g, std::vector<NodeId>{0, 1, 2}),
               std::invalid_argument);  // wrong size
  EXPECT_THROW(reorder_graph(g, std::vector<NodeId>{0, 1, 2, 2}),
               std::invalid_argument);  // duplicate
  EXPECT_THROW(reorder_graph(g, std::vector<NodeId>{0, 1, 2, 4}),
               std::invalid_argument);  // out of range
}

TEST(Reorder, AttachPermutationValidatesMutualInverse) {
  Graph g(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(g.attach_permutation({0, 1}, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(g.attach_permutation({0, 1, 2}, {1, 0, 2}),
               std::invalid_argument);  // not the inverse
  g.attach_permutation({1, 0, 2}, {1, 0, 2});
  EXPECT_TRUE(g.reordered());
  g.attach_permutation({}, {});  // explicit reset to identity
  EXPECT_FALSE(g.reordered());
}

// The reorder-quality gate: BFS reordering strictly lowers the mean
// neighbor-id distance — the direct proxy for gather locality — on both a
// random graph (natural labels are already random) and a geometric graph
// whose natural locality has been destroyed by a random relabelling.
TEST(Reorder, BfsLowersAverageNeighborDistance) {
  {
    const Graph g = random_graph(4000, 8.0, 4);
    const double before = average_neighbor_distance(g);
    const double after =
        average_neighbor_distance(reorder_graph(g, ReorderPolicy::kBfs));
    EXPECT_LT(after, before);
  }
  {
    util::Rng rng(5);
    const Graph natural = graph::torus(60, 60);
    std::vector<NodeId> shuffle(natural.num_nodes());
    std::iota(shuffle.begin(), shuffle.end(), NodeId{0});
    for (NodeId i = natural.num_nodes(); i > 1; --i) {
      std::swap(shuffle[i - 1], shuffle[rng.below(i)]);
    }
    const Graph scrambled = reorder_graph(natural, shuffle);
    const double before = average_neighbor_distance(scrambled);
    const double after = average_neighbor_distance(
        reorder_graph(scrambled, ReorderPolicy::kBfs));
    EXPECT_LT(after, before);
  }
}

// Satellite invariant: the whole reorder pipeline — permutation, rebuild,
// engine construction over the result — must never trigger the lazy edges()
// rebuild on either graph.
TEST(Reorder, NeverTriggersLazyEdgesRebuild) {
  Graph g = random_graph(400, 6.0, 6);
  static_cast<void>(g.edges());  // materialize the cache once
  const std::uint64_t before = g.edges_rebuild_count();
  Graph r = reorder_graph(g, ReorderPolicy::kBfs);
  EXPECT_EQ(g.edges_rebuild_count(), before);
  EXPECT_EQ(r.edges_rebuild_count(), 0u);

  const unison::AlgAu alg(3);
  auto sched = sched::make_scheduler("synchronous", r);
  Engine engine(r, alg, *sched, Configuration(r.num_nodes(), 0), 7,
                EngineOptions{.reorder = ReorderMode::kOff});
  engine.run_rounds(3);
  EXPECT_EQ(r.edges_rebuild_count(), 0u);

  Graph fresh = random_graph(400, 6.0, 6);
  auto sched2 = sched::make_scheduler("synchronous", fresh);
  Engine reordering(fresh, alg, *sched2, Configuration(fresh.num_nodes(), 0),
                    7, EngineOptions{.reorder = ReorderMode::kBfs});
  reordering.run_rounds(3);
  EXPECT_EQ(fresh.edges_rebuild_count(), 0u);
}

// --- shard sizing -------------------------------------------------------------

TEST(ShardSizing, RecommendedShardCountScalesWithFootprint) {
  {
    const Graph tiny = random_graph(500, 6.0, 61);  // ~17 KiB working set
    EXPECT_EQ(core::recommended_shard_count(tiny, 8), 1u);
    EXPECT_EQ(core::recommended_shard_count(tiny, 1), 1u);
  }
  {
    const Graph mid = random_graph(120000, 8.0, 62);  // a few MiB
    const unsigned k = core::recommended_shard_count(mid, 16);
    EXPECT_GT(k, 1u);
    EXPECT_LE(k, 16u);
    // Monotone in the budget: a bigger budget never yields fewer shards.
    EXPECT_GE(core::recommended_shard_count(mid, 32),
              core::recommended_shard_count(mid, 8));
  }
  {
    // Past ~budget * kMinShardFootprintBytes the full budget is used.
    const Graph big = random_graph(400000, 10.0, 63);
    EXPECT_EQ(core::recommended_shard_count(big, 8), 8u);
  }
}

// --- EngineOptions::reorder routing -----------------------------------------

TEST(EngineReorder, AutoEngagesOnlyAtScale) {
  const unison::AlgAu alg(3);
  {
    Graph small = random_graph(1000, 6.0, 8);
    auto sched = sched::make_scheduler("synchronous", small);
    Engine e(small, alg, *sched, Configuration(small.num_nodes(), 0), 9);
    EXPECT_FALSE(small.reordered());
  }
  {
    Graph big = random_graph(70000, 4.0, 8);
    auto sched = sched::make_scheduler("synchronous", big);
    Engine e(big, alg, *sched, Configuration(big.num_nodes(), 0), 9);
    EXPECT_TRUE(big.reordered());
    e.run_rounds(2);
    EXPECT_EQ(e.rounds_completed(), 2u);
  }
}

TEST(EngineReorder, ConstGraphAndPreReorderedGraphAreLeftAlone) {
  const unison::AlgAu alg(3);
  const Graph g = random_graph(300, 5.0, 10);
  auto sched = sched::make_scheduler("synchronous", g);
  // Const overload: the option cannot (and does not) rebuild the graph.
  Engine e(g, alg, *sched, Configuration(g.num_nodes(), 0), 11,
           EngineOptions{.reorder = ReorderMode::kBfs});
  EXPECT_FALSE(g.reordered());

  Graph pre = reorder_graph(g, ReorderPolicy::kBfs);
  const std::vector<NodeId> perm(pre.permutation().begin(),
                                 pre.permutation().end());
  auto sched2 = sched::make_scheduler("synchronous", pre);
  Engine e2(pre, alg, *sched2, Configuration(pre.num_nodes(), 0), 11,
            EngineOptions{.reorder = ReorderMode::kBfs});
  ASSERT_TRUE(pre.reordered());
  EXPECT_TRUE(std::equal(perm.begin(), perm.end(),
                         pre.permutation().begin()));  // not compounded
}

// --- permutation-equivalence differential suite ------------------------------

/// A plain graph with exactly the subject's internal CSR and no relabelling:
/// the baseline substrate of the differential oracle.
Graph strip_permutation(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const NodeId u : g.neighbors(v)) {
      if (v < u) edges.push_back({v, u});
    }
  }
  return Graph(g.num_nodes(), std::move(edges));
}

struct EquivalenceCell {
  std::string scheduler;
  unsigned threads = 1;
  SignalFieldMode field = SignalFieldMode::kOff;
  std::uint64_t steps = 200;
};

/// Drives subject (reordered) and baseline (same layout, identity ids) in
/// lockstep and compares every user-visible observable through the
/// permutation. `churn_at` nonzero applies one adversarial topology delta
/// (in user ids to the subject, translated to the baseline) mid-run, so the
/// equivalence is also held across a churn event.
void run_equivalence_cell(const core::Automaton& alg, const EquivalenceCell& c,
                          std::uint64_t seed, std::uint64_t churn_at = 0) {
  SCOPED_TRACE(c.scheduler + " threads=" + std::to_string(c.threads) +
               " field=" + std::to_string(static_cast<int>(c.field)) +
               (churn_at != 0 ? " churn" : ""));
  const NodeId n = 200;
  util::Rng rng(seed);
  const Graph g0 = graph::random_connected(n, 14.0 / n, rng);
  const Configuration c0 = core::random_configuration(alg, n, rng);

  EngineOptions opts;
  opts.thread_count = c.threads;
  opts.sparse_activation_threshold = 64;  // let random-subset shard at n=200
  opts.signal_field = c.field;

  Graph subject_graph = g0;
  auto subject_sched = sched::make_scheduler(c.scheduler, subject_graph);
  EngineOptions subject_opts = opts;
  subject_opts.reorder = ReorderMode::kBfs;
  Engine subject(subject_graph, alg, *subject_sched, c0, seed, subject_opts);
  ASSERT_TRUE(subject_graph.reordered());

  Graph baseline_graph = strip_permutation(subject_graph);
  Configuration baseline_c0(n);
  for (NodeId i = 0; i < n; ++i) {
    baseline_c0[i] = c0[subject_graph.to_user(i)];
  }
  auto baseline_sched = sched::make_scheduler(c.scheduler, baseline_graph);
  EngineOptions baseline_opts = opts;
  baseline_opts.reorder = ReorderMode::kOff;  // mutable overload: no rebuild
  Engine baseline(baseline_graph, alg, *baseline_sched,
                  std::move(baseline_c0), seed, baseline_opts);
  ASSERT_FALSE(baseline_graph.reordered());

  const auto compare = [&] {
    ASSERT_EQ(subject.time(), baseline.time());
    ASSERT_EQ(subject.rounds_completed(), baseline.rounds_completed());
    const Configuration& user = subject.config();
    for (NodeId v = 0; v < n; ++v) {
      const NodeId i = subject_graph.to_internal(v);
      ASSERT_EQ(subject.state_of(v), baseline.state_of(i)) << "node " << v;
      ASSERT_EQ(user[v], baseline.state_of(i)) << "node " << v;
      ASSERT_EQ(subject.activation_count(v), baseline.activation_count(i))
          << "node " << v;
    }
  };

  std::uint64_t done = 0;
  const auto advance = [&](std::uint64_t until) {
    for (; done < until; ++done) {
      subject.step();
      baseline.step();
    }
  };
  if (churn_at != 0 && churn_at < c.steps) {
    advance(churn_at);
    util::Rng churn_rng(seed ^ 0x9E3779B97F4A7C15ULL);
    core::ChurnAdversary adversary(subject_graph,
                                   {.fail_p = 0.2, .heal_p = 0.5});
    const graph::TopologyDelta user_delta = adversary.next_event(churn_rng);
    ASSERT_FALSE(user_delta.empty());
    graph::TopologyDelta internal_delta;
    for (const auto& [u, v] : user_delta.remove) {
      internal_delta.remove.emplace_back(subject_graph.to_internal(u),
                                         subject_graph.to_internal(v));
    }
    for (const auto& [u, v] : user_delta.add) {
      internal_delta.add.emplace_back(subject_graph.to_internal(u),
                                      subject_graph.to_internal(v));
    }
    subject.apply_topology_delta(user_delta);
    baseline.apply_topology_delta(internal_delta);
    compare();
  }
  advance(c.steps / 2);
  compare();
  advance(c.steps);
  compare();
}

const char* const kAllSchedulers[] = {
    "synchronous", "uniform-single", "random-subset", "rotating-single",
    "laggard",     "wave",           "permutation",   "burst"};

TEST(PermutationEquivalence, AlgAuAllSchedulersAllThreadCounts) {
  const unison::AlgAu alg(3);
  for (const char* sched : kAllSchedulers) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      for (const SignalFieldMode field :
           {SignalFieldMode::kOff, SignalFieldMode::kOn}) {
        run_equivalence_cell(alg, {sched, threads, field, 160}, 21);
      }
    }
  }
}

TEST(PermutationEquivalence, AlgMisAllSchedulersAllThreadCounts) {
  // Randomized δ: the sharpest probe of the internal-id-keyed draw streams.
  const mis::AlgMis alg(mis::AlgMisParams{});
  for (const char* sched : kAllSchedulers) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      for (const SignalFieldMode field :
           {SignalFieldMode::kOff, SignalFieldMode::kOn}) {
        run_equivalence_cell(alg, {sched, threads, field, 120}, 22);
      }
    }
  }
}

TEST(PermutationEquivalence, AlgLeAllSchedulersAllThreadCounts) {
  const le::AlgLe alg(le::AlgLeParams{});
  for (const char* sched : kAllSchedulers) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      for (const SignalFieldMode field :
           {SignalFieldMode::kOff, SignalFieldMode::kOn}) {
        run_equivalence_cell(alg, {sched, threads, field, 120}, 23);
      }
    }
  }
}

TEST(PermutationEquivalence, HoldsAcrossChurnEvents) {
  const unison::AlgAu alg(3);
  for (const char* sched : {"uniform-single", "random-subset", "wave"}) {
    for (const unsigned threads : {1u, 4u}) {
      run_equivalence_cell(alg, {sched, threads, SignalFieldMode::kOff, 160},
                           24, /*churn_at=*/80);
    }
  }
  const mis::AlgMis mis_alg(mis::AlgMisParams{});
  run_equivalence_cell(mis_alg,
                       {"random-subset", 2, SignalFieldMode::kOn, 120}, 25,
                       /*churn_at=*/60);
}

// Listener streams cross the boundary too: a reordered engine must report
// the same transitions at the same times under USER ids, in the same order.
TEST(PermutationEquivalence, ListenerStreamsMatchUnderUserIds) {
  using Record = std::tuple<NodeId, core::StateId, core::StateId, core::Time>;
  const unison::AlgAu alg(3);
  for (const char* sched : {"synchronous", "uniform-single"}) {
    for (const unsigned threads : {1u, 4u}) {
      SCOPED_TRACE(std::string(sched) + " threads=" + std::to_string(threads));
      const NodeId n = 150;
      util::Rng rng(31);
      const Graph g0 = graph::random_connected(n, 12.0 / n, rng);
      const Configuration c0 = core::random_configuration(alg, n, rng);

      EngineOptions opts;
      opts.thread_count = threads;
      Graph subject_graph = g0;
      auto subject_sched = sched::make_scheduler(sched, subject_graph);
      EngineOptions subject_opts = opts;
      subject_opts.reorder = ReorderMode::kBfs;
      Engine subject(subject_graph, alg, *subject_sched, c0, 32, subject_opts);
      ASSERT_TRUE(subject_graph.reordered());

      const Graph baseline_graph = strip_permutation(subject_graph);
      Configuration baseline_c0(n);
      for (NodeId i = 0; i < n; ++i) {
        baseline_c0[i] = c0[subject_graph.to_user(i)];
      }
      auto baseline_sched = sched::make_scheduler(sched, baseline_graph);
      EngineOptions baseline_opts = opts;
      baseline_opts.reorder = ReorderMode::kOff;
      Engine baseline(baseline_graph, alg, *baseline_sched,
                      std::move(baseline_c0), 32, baseline_opts);

      std::vector<Record> subject_stream;
      std::vector<Record> baseline_stream;
      subject.set_transition_listener(
          [&](NodeId v, core::StateId from, core::StateId to,
              const core::Signal&, core::Time t) {
            subject_stream.emplace_back(v, from, to, t);
          });
      baseline.set_transition_listener(
          [&](NodeId v, core::StateId from, core::StateId to,
              const core::Signal&, core::Time t) {
            baseline_stream.emplace_back(subject_graph.to_user(v), from, to,
                                         t);
          });
      for (int s = 0; s < 60; ++s) {
        subject.step();
        baseline.step();
      }
      EXPECT_EQ(subject_stream, baseline_stream);
    }
  }
}

// --- user-space API semantics on a reordered engine --------------------------

TEST(EngineReorder, InjectionsAndQueriesSpeakUserIds) {
  const unison::AlgAu alg(5);
  const NodeId n = 240;
  util::Rng rng(41);
  Graph g = graph::random_connected(n, 10.0 / n, rng);
  auto sched = sched::make_scheduler("uniform-single", g);
  Engine e(g, alg, *sched, Configuration(n, 0), 42,
           EngineOptions{.reorder = ReorderMode::kBfs});
  ASSERT_TRUE(g.reordered());

  Configuration injected = core::random_configuration(alg, n, rng);
  e.inject_configuration(injected);
  EXPECT_EQ(e.config(), injected);
  for (NodeId v = 0; v < n; v += 17) {
    EXPECT_EQ(e.state_of(v), injected[v]);
  }

  e.inject_state(7, 3);
  EXPECT_EQ(e.state_of(7), 3u);
  // signal_of(v) senses v's USER neighborhood: exactly the distinct states
  // of v and its user-id neighbors.
  std::vector<core::StateId> sensed{e.state_of(7)};
  for (const NodeId nb : g.neighbors(g.to_internal(7))) {
    sensed.push_back(e.state_of(g.to_user(nb)));
  }
  EXPECT_EQ(e.signal_of(7), core::Signal::from_states(std::move(sensed)));
  EXPECT_THROW(e.inject_state(n, 0), std::invalid_argument);
}

// --- snapshot round trip with a permutation ----------------------------------

TEST(EngineReorder, SnapshotRoundTripCarriesThePermutation) {
  const mis::AlgMis alg(mis::AlgMisParams{});
  const NodeId n = 220;
  util::Rng rng(51);
  Graph g = graph::random_connected(n, 12.0 / n, rng);
  auto sched = sched::make_scheduler("random-subset", g);
  Engine original(g, alg, *sched, core::random_configuration(alg, n, rng), 52,
                  EngineOptions{.reorder = ReorderMode::kBfs});
  ASSERT_TRUE(g.reordered());
  for (int s = 0; s < 80; ++s) original.step();

  const auto bytes = core::snapshot::save(original);
  Graph restored_graph = core::snapshot::restore_graph(bytes);
  ASSERT_TRUE(restored_graph.reordered());
  EXPECT_TRUE(std::equal(g.permutation().begin(), g.permutation().end(),
                         restored_graph.permutation().begin()));

  auto restored_sched = sched::make_scheduler("random-subset", restored_graph);
  auto restored = core::snapshot::restore(bytes, restored_graph, alg,
                                          *restored_sched);
  // The restored engine must never re-reorder the wire layout, whatever the
  // recorded options said.
  EXPECT_EQ(restored->options().reorder, ReorderMode::kOff);
  EXPECT_EQ(core::engine_state_hash(original),
            core::engine_state_hash(*restored));
  for (int s = 0; s < 40; ++s) {
    original.step();
    restored->step();
  }
  EXPECT_EQ(core::engine_state_hash(original),
            core::engine_state_hash(*restored));
  EXPECT_EQ(original.config(), restored->config());

  // A caller graph with the right topology but the WRONG (absent)
  // relabelling must be rejected: the serialized state arrays would not
  // reconcile with it.
  Graph stripped = strip_permutation(g);
  auto stripped_sched = sched::make_scheduler("random-subset", stripped);
  EXPECT_THROW(core::snapshot::restore(bytes, stripped, alg, *stripped_sched),
               util::SnapshotError);
}

}  // namespace
}  // namespace ssau
