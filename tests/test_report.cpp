// Tests for the configuration/report formatting helpers and DOT export.
#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "sched/scheduler.hpp"
#include "unison/alg_au.hpp"

namespace ssau::analysis {
namespace {

TEST(Report, FormatConfigurationUsesStateNames) {
  const unison::AlgAu alg(1);
  const auto& ts = alg.turns();
  const core::Configuration c{ts.able_id(3), ts.faulty_id(-2), ts.able_id(-1)};
  EXPECT_EQ(format_configuration(alg, c), "[3 ^-2 -1]");
}

TEST(Report, FormatOutputsMarksNonOutputStates) {
  const unison::AlgAu alg(1);
  const auto& ts = alg.turns();
  const core::Configuration c{ts.able_id(1), ts.faulty_id(2)};
  // κ(1) = 0; ^2 is not an output state.
  EXPECT_EQ(format_outputs(alg, c), "[0 ·]");
}

TEST(Report, FormatEngineMentionsTimeAndRounds) {
  const graph::Graph g = graph::path(2);
  const unison::AlgAu alg(1);
  sched::SynchronousScheduler sched(2);
  core::Engine e(g, alg, sched,
                 {alg.turns().able_id(1), alg.turns().able_id(1)}, 1);
  e.step();
  const std::string s = format_engine(e);
  EXPECT_NE(s.find("t=1"), std::string::npos);
  EXPECT_NE(s.find("rounds=1"), std::string::npos);
  EXPECT_NE(s.find("states=["), std::string::npos);
}

TEST(Dot, UndirectedGraphExport) {
  const graph::Graph g = graph::path(3);
  std::ostringstream os;
  graph::write_dot(os, g);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph G {"), std::string::npos);
  EXPECT_NE(out.find("n0 -- n1;"), std::string::npos);
  EXPECT_NE(out.find("n1 -- n2;"), std::string::npos);
  EXPECT_EQ(out.find("n0 -- n2"), std::string::npos);
}

TEST(Dot, NodeLabelsApplied) {
  const graph::Graph g = graph::path(2);
  std::ostringstream os;
  graph::write_dot(os, g, [](graph::NodeId v) {
    return "cell" + std::to_string(v);
  });
  EXPECT_NE(os.str().find("label=\"cell1\""), std::string::npos);
}

}  // namespace
}  // namespace ssau::analysis
