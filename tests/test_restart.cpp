// Tests for the Restart module (§3.3): rules 1–3 and the Thm 3.1 guarantee
// that all nodes exit concurrently within t0 + 3D, plus the Lem 3.9–3.11
// wave-shape invariants.
#include "restart/restart.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sched/scheduler.hpp"

namespace ssau::restart {
namespace {

core::Signal sig(std::initializer_list<core::StateId> states) {
  return core::Signal::from_states(std::vector<core::StateId>(states));
}

TEST(RestartRules, DecisionTable) {
  RestartRules rules(3);  // chain σ(0..6)
  EXPECT_EQ(rules.chain_length(), 7);
  EXPECT_EQ(rules.exit_index(), 6);

  // No σ anywhere: module not involved.
  EXPECT_EQ(rules.decide(std::nullopt, std::nullopt, true, false).kind,
            RestartDecision::Kind::kNone);
  // Rule 1: mixed σ / non-σ neighborhood enters at σ(0).
  EXPECT_EQ(rules.decide(std::nullopt, 4, true, false).kind,
            RestartDecision::Kind::kEnter);
  EXPECT_EQ(rules.decide(2, 2, true, false).kind,
            RestartDecision::Kind::kEnter);
  // Rule 2: all-σ neighborhood steps to min+1.
  const auto step = rules.decide(3, 2, false, false);
  EXPECT_EQ(step.kind, RestartDecision::Kind::kStep);
  EXPECT_EQ(step.index, 3);
  // Rule 3: exactly {σ(2D)} exits.
  EXPECT_EQ(rules.decide(6, 6, false, true).kind,
            RestartDecision::Kind::kExit);
  EXPECT_THROW(RestartRules(0), std::invalid_argument);
}

TEST(StandaloneRestart, StateLayout) {
  StandaloneRestart alg(2, 3);  // σ(0..4) + 3 host states
  EXPECT_EQ(alg.state_count(), 8u);
  EXPECT_TRUE(alg.is_sigma(alg.sigma_id(4)));
  EXPECT_FALSE(alg.is_sigma(alg.host_id(0)));
  EXPECT_EQ(alg.sigma_index(alg.sigma_id(3)), 3);
  EXPECT_EQ(alg.initial_state(), alg.host_id(0));
  EXPECT_EQ(alg.state_name(alg.sigma_id(1)), "s1");
  EXPECT_EQ(alg.state_name(alg.host_id(2)), "h2");
  EXPECT_THROW((void)alg.host_id(3), std::invalid_argument);
}

TEST(StandaloneRestart, HostJoinsSensedWave) {
  StandaloneRestart alg(2, 2);
  util::Rng rng(1);
  EXPECT_EQ(alg.step(alg.host_id(1),
                     sig({alg.host_id(1), alg.sigma_id(3)}), rng),
            alg.sigma_id(0));
  // Without a wave the host is inert.
  EXPECT_EQ(alg.step(alg.host_id(1), sig({alg.host_id(1), alg.host_id(0)}),
                     rng),
            alg.host_id(1));
}

TEST(StandaloneRestart, SigmaStepsAndExits) {
  StandaloneRestart alg(2, 2);  // exit index 4
  util::Rng rng(1);
  EXPECT_EQ(alg.step(alg.sigma_id(2), sig({alg.sigma_id(2), alg.sigma_id(1)}),
                     rng),
            alg.sigma_id(2));
  EXPECT_EQ(alg.step(alg.sigma_id(1), sig({alg.sigma_id(1), alg.sigma_id(3)}),
                     rng),
            alg.sigma_id(2));
  EXPECT_EQ(alg.step(alg.sigma_id(4), sig({alg.sigma_id(4)}), rng),
            alg.host_id(0));
  // σ(2D) sensing a lower σ does not exit.
  EXPECT_EQ(alg.step(alg.sigma_id(4), sig({alg.sigma_id(4), alg.sigma_id(2)}),
                     rng),
            alg.sigma_id(3));
}

/// Runs the standalone module synchronously until the concurrent all-exit
/// step promised by Thm 3.1: every node at σ(2D), then every node at q0*.
/// (Partial exits may occur earlier from all-σ configurations; such nodes
/// re-enter through rule 1 — the theorem's claim is about the eventual
/// concurrent exit, which is what we wait for.)
std::uint64_t run_to_concurrent_exit(const graph::Graph& g,
                                     const StandaloneRestart& alg,
                                     core::Configuration init,
                                     std::uint64_t budget) {
  sched::SynchronousScheduler sched(g.num_nodes());
  core::Engine engine(g, alg, sched, std::move(init), 17);
  const auto exit_state = alg.sigma_id(alg.rules().exit_index());
  for (std::uint64_t t = 0; t < budget; ++t) {
    const core::Configuration pre = engine.config();
    engine.step();
    const auto& post = engine.config();
    bool all_at_exit = true;
    bool all_reset = true;
    for (core::NodeId v = 0; v < g.num_nodes(); ++v) {
      all_at_exit = all_at_exit && pre[v] == exit_state;
      all_reset = all_reset && post[v] == alg.initial_state();
    }
    if (all_at_exit) {
      EXPECT_TRUE(all_reset) << "nodes at Restart-exit did not all leave";
      return engine.time();
    }
  }
  ADD_FAILURE() << "no concurrent exit within budget";
  return budget;
}

class RestartTheorem31
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(RestartTheorem31, ConcurrentExitWithin3D) {
  const auto& [graph_name, config_kind] = GetParam();
  util::Rng rng(42);
  graph::Graph g = graph_name == "path"    ? graph::path(7)
                   : graph_name == "cycle" ? graph::cycle(8)
                   : graph_name == "grid"  ? graph::grid(3, 3)
                                           : graph::complete(6);
  const int diam = static_cast<int>(graph::diameter(g));
  StandaloneRestart alg(diam, 3);

  core::Configuration init(g.num_nodes());
  if (config_kind == "one-entry") {
    for (core::NodeId v = 0; v < g.num_nodes(); ++v) init[v] = alg.host_id(1);
    init[0] = alg.sigma_id(0);
  } else if (config_kind == "random-sigma") {
    for (auto& q : init) {
      q = alg.sigma_id(static_cast<int>(rng.below(2 * diam + 1)));
    }
  } else {  // mixed
    for (core::NodeId v = 0; v < g.num_nodes(); ++v) {
      init[v] = (v % 2 == 0)
                    ? alg.sigma_id(static_cast<int>(rng.below(2 * diam + 1)))
                    : alg.host_id(static_cast<int>(rng.below(3)));
    }
  }

  const auto exit_time = run_to_concurrent_exit(
      g, alg, init, 10ULL * diam + 50);
  // Thm 3.1 proof bound: exit by 3D steps after σ(0) appears; reaching a
  // σ(0) from an arbitrary σ-configuration takes at most ~2 extra steps
  // (partial exit followed by rule-1 re-entry).
  EXPECT_LE(exit_time, static_cast<std::uint64_t>(3 * diam + 3))
      << graph_name << "/" << config_kind;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RestartTheorem31,
    ::testing::Combine(::testing::Values("path", "cycle", "grid", "clique"),
                       ::testing::Values("one-entry", "random-sigma",
                                         "mixed")));

TEST(RestartWave, Lemma39SigmaZeroDominatesBall) {
  // Lem 3.9: from q^t(v) = σ(0), after d rounds every node within distance d
  // is in {σ(j) : j <= d}.
  const graph::Graph g = graph::path(6);
  StandaloneRestart alg(static_cast<int>(graph::diameter(g)), 2);
  sched::SynchronousScheduler sched(6);
  core::Configuration init(6, alg.host_id(1));
  init[0] = alg.sigma_id(0);
  core::Engine engine(g, alg, sched, init, 3);
  const auto dist = graph::bfs_distances(g, 0);
  for (int d = 1; d <= 5; ++d) {
    engine.step();
    for (core::NodeId v = 0; v < 6; ++v) {
      if (dist[v] <= static_cast<std::uint32_t>(d)) {
        ASSERT_TRUE(alg.is_sigma(engine.state_of(v)));
        EXPECT_LE(alg.sigma_index(engine.state_of(v)), d);
      }
    }
  }
}

TEST(RestartWave, Lemma311SynchronizedClimbAfterFullCoverage) {
  // Once Q^t ⊆ {σ(j) : j <= D} with a unique minimum, the ball around the
  // minimum reaches uniformity: eventually all nodes share one σ index.
  const graph::Graph g = graph::cycle(8);
  const int diam = static_cast<int>(graph::diameter(g));
  StandaloneRestart alg(diam, 2);
  sched::SynchronousScheduler sched(8);
  core::Configuration init(8);
  for (core::NodeId v = 0; v < 8; ++v) {
    init[v] = alg.sigma_id(
        std::min<int>(static_cast<int>(graph::bfs_distances(g, 0)[v]), diam));
  }
  core::Engine engine(g, alg, sched, init, 5);
  bool uniform_seen = false;
  for (int t = 0; t < 3 * diam + 5 && !uniform_seen; ++t) {
    engine.step();
    uniform_seen = true;
    for (core::NodeId v = 1; v < 8; ++v) {
      if (engine.state_of(v) != engine.state_of(0)) uniform_seen = false;
    }
  }
  EXPECT_TRUE(uniform_seen);
}

}  // namespace
}  // namespace ssau::restart
