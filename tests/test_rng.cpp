// Unit tests for util::Rng: determinism, bounds, distribution sanity.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace ssau::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.uniform(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == -3;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, CoinIsRoughlyFair) {
  Rng rng(29);
  int heads = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) heads += rng.coin() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.02);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(31);
  const double p = 0.25;
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto g = rng.geometric(p);
    ASSERT_GE(g, 1u);
    sum += static_cast<double>(g);
  }
  EXPECT_NEAR(sum / trials, 1.0 / p, 0.15);
}

TEST(Rng, GeometricProbabilityOneIsOneTrial) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa(), fb());
  // The parent streams stay in lockstep too.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamIsAPureFunctionOfSeedAndId) {
  // Counter-based derivation: stream i of seed s yields the same sequence no
  // matter when, where, or in what order the streams are constructed — the
  // property the sharded engine's per-node streams rely on.
  Rng early = Rng::stream(99, 3);
  Rng other = Rng::stream(99, 7);
  for (int i = 0; i < 50; ++i) (void)other();
  Rng late = Rng::stream(99, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(early(), late());
}

TEST(Rng, StreamsAreDistinct) {
  // Different ids (and different seeds) give different sequences; stream 0
  // differs from the root generator of the same seed.
  Rng s0 = Rng::stream(11, 0);
  Rng s1 = Rng::stream(11, 1);
  Rng other_seed = Rng::stream(12, 0);
  Rng root(11);
  int agree01 = 0;
  int agree_seed = 0;
  int agree_root = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t a = s0();
    if (a == s1()) ++agree01;
    if (a == other_seed()) ++agree_seed;
    if (a == root()) ++agree_root;
  }
  EXPECT_EQ(agree01, 0);
  EXPECT_EQ(agree_seed, 0);
  EXPECT_EQ(agree_root, 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(41);
  (void)rng();
}

}  // namespace
}  // namespace ssau::util
