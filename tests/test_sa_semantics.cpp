// Model-conformance tests: the simulator implements the SA model's
// set-broadcast semantics exactly — transitions depend only on the *set* of
// sensed states (no multiplicities, no sender identities), the algorithms
// are anonymous and size-uniform, and AlgAU's transition function is total
// and deterministic over its whole (state, signal) domain.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "le/alg_le.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"
#include "unison/alg_au.hpp"

namespace ssau::core {
namespace {

// --- presence-only sensing ----------------------------------------------------

TEST(SaSemantics, TransitionsIgnoreMultiplicity) {
  // A star center whose leaves present the same state SET with different
  // multiplicities must transition identically.
  const graph::Graph g = graph::star(5);  // hub 0, leaves 1..4
  const unison::AlgAu alg(2);
  const auto& ts = alg.turns();
  sched::SynchronousScheduler sched(5);

  // Leaves: {3,3,3,4} vs {3,4,4,4} — same presence set {3,4}; hub at 3.
  Configuration a{ts.able_id(3), ts.able_id(3), ts.able_id(3), ts.able_id(3),
                  ts.able_id(4)};
  Configuration b{ts.able_id(3), ts.able_id(3), ts.able_id(4), ts.able_id(4),
                  ts.able_id(4)};
  Engine ea(g, alg, sched, a, 7);
  Engine eb(g, alg, sched, b, 7);
  EXPECT_EQ(ea.signal_of(0), eb.signal_of(0));
  ea.step();
  eb.step();
  EXPECT_EQ(ea.state_of(0), eb.state_of(0));
}

TEST(SaSemantics, SignalsHideSenderIdentity) {
  // Permuting which neighbor holds which state leaves the signal unchanged.
  const graph::Graph g = graph::star(4);
  const unison::AlgAu alg(1);
  const auto& ts = alg.turns();
  sched::SynchronousScheduler sched(4);
  Configuration a{ts.able_id(2), ts.able_id(1), ts.able_id(2), ts.able_id(3)};
  Configuration b{ts.able_id(2), ts.able_id(3), ts.able_id(1), ts.able_id(2)};
  Engine ea(g, alg, sched, a, 1);
  Engine eb(g, alg, sched, b, 1);
  EXPECT_EQ(ea.signal_of(0), eb.signal_of(0));
}

// --- anonymity / size-uniformity -----------------------------------------------

TEST(SaSemantics, StateSpaceIndependentOfN) {
  // Size-uniformity: |Q| is a function of D only, never of n.
  for (const int d : {1, 3}) {
    const unison::AlgAu au(d);
    const le::AlgLe le({.diameter_bound = d});
    const mis::AlgMis mis({.diameter_bound = d});
    const auto au_q = au.state_count();
    const auto le_q = le.state_count();
    const auto mis_q = mis.state_count();
    // Running on graphs of any size uses the same automaton object; the
    // counts above already encode no n. Sanity: they match fresh instances.
    EXPECT_EQ(unison::AlgAu(d).state_count(), au_q);
    EXPECT_EQ(le::AlgLe({.diameter_bound = d}).state_count(), le_q);
    EXPECT_EQ(mis::AlgMis({.diameter_bound = d}).state_count(), mis_q);
  }
}

TEST(SaSemantics, AnonymousNodesWithEqualViewsTransitionEqually) {
  // On a vertex-transitive graph from a uniform configuration, all nodes
  // have identical signals, so a synchronous step keeps the configuration
  // uniform (no identifiers to break the symmetry in AlgAU, which is
  // deterministic).
  const graph::Graph g = graph::cycle(6);
  const unison::AlgAu alg(3);
  sched::SynchronousScheduler sched(6);
  Engine engine(g, alg, sched,
                uniform_configuration(6, alg.turns().able_id(2)), 3);
  for (int t = 0; t < 40; ++t) {
    engine.step();
    for (NodeId v = 1; v < 6; ++v) {
      ASSERT_EQ(engine.state_of(v), engine.state_of(0)) << "step " << t;
    }
  }
}

// --- totality & determinism over the full signal domain -------------------------

class AlgAuTotality : public ::testing::TestWithParam<int> {};

TEST_P(AlgAuTotality, StepIsTotalDeterministicAndClassifiable) {
  const unison::AlgAu alg(GetParam());
  const auto count = alg.state_count();
  util::Rng rng_a(1), rng_b(2);
  // Enumerate every own-state with every signal of <= 2 extra distinct
  // states: covers all guard combinations exhaustively for small D.
  for (StateId own = 0; own < count; ++own) {
    for (StateId s1 = 0; s1 < count; ++s1) {
      for (StateId s2 = s1; s2 < count; ++s2) {
        const Signal sig = Signal::from_states({own, s1, s2});
        const StateId next_a = alg.step(own, sig, rng_a);
        const StateId next_b = alg.step(own, sig, rng_b);
        ASSERT_LT(next_a, count);
        ASSERT_EQ(next_a, next_b) << "nondeterminism in deterministic AlgAU";
        if (next_a != own) {
          // Every move is one of the three legal Table-1 shapes.
          ASSERT_NO_THROW((void)alg.classify(own, next_a));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallD, AlgAuTotality, ::testing::Values(1));

TEST(SaSemantics, EngineStepCountsMatchScheduleExactly) {
  // The engine applies exactly the scheduler's activations — no more, no
  // less (activation bookkeeping vs a manual count).
  const graph::Graph g = graph::path(4);
  const unison::AlgAu alg(3);
  auto sched = sched::make_scheduler("random-subset", g);
  util::Rng rng(5);
  Engine engine(g, alg, *sched,
                unison::au_adversarial_configuration("random", alg, g, rng),
                5);
  for (int t = 0; t < 50; ++t) engine.step();
  std::uint64_t total = 0;
  for (NodeId v = 0; v < 4; ++v) total += engine.activation_count(v);
  EXPECT_GE(total, 50u);       // at least one node per step
  EXPECT_LE(total, 4u * 50u);  // at most all nodes per step
}

}  // namespace
}  // namespace ssau::core
