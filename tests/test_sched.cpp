// Tests for the scheduler suite: correctness of each activation pattern and
// fairness (every node activated infinitely often).
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"

namespace ssau::sched {
namespace {

std::vector<core::NodeId> run(Scheduler& s, core::Time t, util::Rng& rng) {
  std::vector<core::NodeId> out;
  s.activations(t, out, rng);
  return out;
}

TEST(Synchronous, ActivatesEveryone) {
  SynchronousScheduler s(5);
  util::Rng rng(1);
  const auto a = run(s, 0, rng);
  EXPECT_EQ(a.size(), 5u);
  for (core::NodeId v = 0; v < 5; ++v) EXPECT_EQ(a[v], v);
}

TEST(UniformSingle, OneNodePerStepCoversAll) {
  UniformSingleScheduler s(6);
  util::Rng rng(2);
  std::set<core::NodeId> seen;
  for (core::Time t = 0; t < 300; ++t) {
    const auto a = run(s, t, rng);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_LT(a[0], 6u);
    seen.insert(a[0]);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RandomSubset, NeverEmptyAlwaysValid) {
  RandomSubsetScheduler s(8, 0.3);
  util::Rng rng(3);
  for (core::Time t = 0; t < 200; ++t) {
    const auto a = run(s, t, rng);
    ASSERT_FALSE(a.empty());
    std::set<core::NodeId> distinct(a.begin(), a.end());
    EXPECT_EQ(distinct.size(), a.size());
    for (const auto v : a) EXPECT_LT(v, 8u);
  }
}

TEST(RandomSubset, ProbabilityShapesSize) {
  RandomSubsetScheduler s(100, 0.7);
  util::Rng rng(4);
  double total = 0;
  for (core::Time t = 0; t < 200; ++t) total += run(s, t, rng).size();
  EXPECT_NEAR(total / 200.0, 70.0, 5.0);
}

TEST(RotatingSingle, MatchesFigure2Schedule) {
  // "node v_{t-1} is activated in step t" — zero-based: node t mod n at step t.
  RotatingSingleScheduler s(8);
  util::Rng rng(5);
  for (core::Time t = 0; t < 20; ++t) {
    const auto a = run(s, t, rng);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0], t % 8);
  }
}

TEST(RotatingSingle, OffsetApplies) {
  RotatingSingleScheduler s(5, 2);
  util::Rng rng(6);
  EXPECT_EQ(run(s, 0, rng)[0], 2u);
  EXPECT_EQ(run(s, 4, rng)[0], 1u);
}

TEST(Laggard, StarvesOneNodePerBurst) {
  LaggardScheduler s(4, 3);
  util::Rng rng(7);
  // Steps 0..2: everyone except node 0; step 3: node 0 alone.
  for (core::Time t = 0; t < 3; ++t) {
    const auto a = run(s, t, rng);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_TRUE(std::find(a.begin(), a.end(), 0u) == a.end());
  }
  const auto a3 = run(s, 3, rng);
  ASSERT_EQ(a3.size(), 1u);
  EXPECT_EQ(a3[0], 0u);
  // Next cycle starves node 1.
  const auto a4 = run(s, 4, rng);
  EXPECT_TRUE(std::find(a4.begin(), a4.end(), 1u) == a4.end());
}

TEST(Wave, ActivatesBfsLayers) {
  const graph::Graph g = graph::path(4);
  WaveScheduler s(g);
  util::Rng rng(8);
  for (core::Time t = 0; t < 8; ++t) {
    const auto a = run(s, t, rng);
    ASSERT_EQ(a.size(), 1u);        // each BFS layer of a path has one node
    EXPECT_EQ(a[0], t % 4);         // layers in distance order from node 0
  }
}

TEST(Wave, FairOnDisconnectedGraphs) {
  // Two components: a path 0-1-2 and a path 3-4-5-6, plus the isolated node
  // 7. The BFS is seeded at each component's lowest-id node, so layer d holds
  // every node at distance d from its own seed; one full cycle of layers
  // activates every node exactly once.
  const graph::Graph g(8, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}});
  WaveScheduler s(g);
  util::Rng rng(12);
  // Longest component eccentricity is 3 (node 6 from seed 3) -> 4 layers.
  const std::vector<std::vector<core::NodeId>> expected = {
      {0, 3, 7}, {1, 4}, {2, 5}, {6}};
  std::vector<int> counts(8, 0);
  for (core::Time t = 0; t < 8; ++t) {
    const auto a = run(s, t, rng);
    EXPECT_EQ(a, expected[t % 4]) << "step " << t;
    ASSERT_FALSE(a.empty());
    for (const auto v : a) ++counts[v];
  }
  for (core::NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(counts[v], 2) << "node " << v
                            << " not activated once per cycle";
  }
}

TEST(Permutation, EachWindowOfNStepsIsAPermutation) {
  PermutationScheduler s(7);
  util::Rng rng(9);
  for (int round = 0; round < 20; ++round) {
    std::set<core::NodeId> seen;
    for (core::Time t = 0; t < 7; ++t) {
      const auto a = run(s, static_cast<core::Time>(round) * 7 + t, rng);
      ASSERT_EQ(a.size(), 1u);
      seen.insert(a[0]);
    }
    EXPECT_EQ(seen.size(), 7u) << "window " << round << " not a permutation";
  }
}

TEST(Permutation, OrdersVaryAcrossWindows) {
  PermutationScheduler s(6);
  util::Rng rng(10);
  std::set<std::vector<core::NodeId>> orders;
  for (int round = 0; round < 30; ++round) {
    std::vector<core::NodeId> order;
    for (core::Time t = 0; t < 6; ++t) {
      order.push_back(run(s, static_cast<core::Time>(round) * 6 + t, rng)[0]);
    }
    orders.insert(order);
  }
  EXPECT_GT(orders.size(), 5u);
}

TEST(Burst, RepeatsEachNodeBurstTimes) {
  BurstScheduler s(3, 4);
  util::Rng rng(11);
  // Steps 0..3 -> node 0, 4..7 -> node 1, 8..11 -> node 2, 12 -> node 0.
  for (core::Time t = 0; t < 24; ++t) {
    const auto a = run(s, t, rng);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0], (t % 12) / 4);
  }
}

TEST(Burst, ZeroBurstOrZeroNodesThrows) {
  // burst == 0 (and n == 0) used to reach `t % 0` (division by zero, UB) on
  // the first activation; both must fail loudly at construction instead.
  EXPECT_THROW(BurstScheduler(4, 0), std::invalid_argument);
  EXPECT_THROW(BurstScheduler(0, 4), std::invalid_argument);
  EXPECT_NO_THROW(BurstScheduler(4, 1));
}

TEST(Laggard, ZeroBurstOrZeroNodesThrows) {
  EXPECT_THROW(LaggardScheduler(4, 0), std::invalid_argument);
  EXPECT_THROW(LaggardScheduler(0, 4), std::invalid_argument);
  EXPECT_NO_THROW(LaggardScheduler(4, 1));
}

TEST(Factory, ZeroBurstThrowsForBurstParameterizedDaemons) {
  const graph::Graph g = graph::cycle(5);
  EXPECT_THROW(make_scheduler("laggard", g, 0.5, 0), std::invalid_argument);
  EXPECT_THROW(make_scheduler("burst", g, 0.5, 0), std::invalid_argument);
  // Daemons that ignore the burst parameter still construct.
  EXPECT_NO_THROW(make_scheduler("uniform-single", g, 0.5, 0));
  EXPECT_NO_THROW(make_scheduler("wave", g, 0.5, 0));
}

TEST(Factory, EmptyGraphThrows) {
  const graph::Graph empty(0, {});
  EXPECT_THROW(make_scheduler("synchronous", empty), std::invalid_argument);
  EXPECT_THROW(make_scheduler("burst", empty), std::invalid_argument);
}

TEST(ActivationHint, BoundsEverySchedulersSets) {
  // The hint must upper-bound every |A_t| the scheduler can emit; the engine
  // trusts it to size workspaces and to route daemons between the serial and
  // sparse-activation kernels.
  const graph::Graph g = graph::star(9);  // hub 0 + 8 spokes: 2 BFS layers
  util::Rng rng(13);
  for (const std::string& name : async_scheduler_names()) {
    const auto s = make_scheduler(name, g);
    const core::NodeId hint = s->max_activation_hint();
    std::vector<core::NodeId> a;
    for (core::Time t = 0; t < 500; ++t) {
      s->activations(t, a, rng);
      ASSERT_LE(a.size(), hint) << name << " exceeded its hint at step " << t;
    }
  }
  EXPECT_EQ(SynchronousScheduler(9).max_activation_hint(), 9u);
  EXPECT_EQ(RandomSubsetScheduler(9, 0.5).max_activation_hint(), 9u);
  EXPECT_EQ(LaggardScheduler(9, 4).max_activation_hint(), 8u);
  EXPECT_EQ(WaveScheduler(g).max_activation_hint(), 8u);  // the spoke layer
  EXPECT_EQ(UniformSingleScheduler(9).max_activation_hint(), 1u);
  EXPECT_EQ(BurstScheduler(9, 4).max_activation_hint(), 1u);
}

TEST(Factory, BuildsEveryScheduler) {
  const graph::Graph g = graph::cycle(6);
  for (const auto& name : async_scheduler_names()) {
    const auto s = make_scheduler(name, g);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
  }
  EXPECT_EQ(make_scheduler("synchronous", g)->name(), "synchronous");
  EXPECT_THROW(make_scheduler("nope", g), std::invalid_argument);
}

// Fairness audit: over a long window every scheduler activates every node.
class SchedulerFairness : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerFairness, EveryNodeActivatedRepeatedly) {
  const graph::Graph g = graph::cycle(9);
  const auto s = make_scheduler(GetParam(), g);
  util::Rng rng(11);
  std::vector<int> counts(9, 0);
  std::vector<core::NodeId> a;
  for (core::Time t = 0; t < 2000; ++t) {
    s->activations(t, a, rng);
    for (const auto v : a) ++counts[v];
  }
  for (core::NodeId v = 0; v < 9; ++v) {
    EXPECT_GE(counts[v], 10) << GetParam() << " starves node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerFairness,
                         ::testing::Values("synchronous", "uniform-single",
                                           "random-subset", "rotating-single",
                                           "laggard", "wave", "permutation",
                                           "burst"));

TEST(TopologyChange, WaveRecomputesLayersOnChurn) {
  // A 6-path has 6 BFS layers from node 0; adding the chord {0, 5} folds it
  // to 4, and partitioning it re-seeds one wave per component. The hook must
  // track each edit in place; hint follows the largest layer.
  graph::Graph g = graph::path(6);
  WaveScheduler wave(g);
  util::Rng rng(5);
  std::vector<core::NodeId> a;
  auto layer_count = [&] {
    // Layers repeat with period = layer count; find it via layer 0 = {0,...}.
    wave.activations(0, a, rng);
    std::vector<core::NodeId> first = a;
    for (core::Time t = 1; t <= 64; ++t) {
      wave.activations(t, a, rng);
      if (a == first) return t;
    }
    return core::Time{0};
  };
  ASSERT_EQ(layer_count(), 6u);

  g.add_edge(0, 5);
  wave.on_topology_change(g);
  EXPECT_EQ(layer_count(), 4u);  // cycle of 6: distances {0},{1,5},{2,4},{3}

  // Partition into {0,1,2} and {3,4,5}: components wave simultaneously, so
  // three layers, each holding one node per component.
  g.apply_delta({.remove = {{2, 3}, {0, 5}}, .add = {}});
  wave.on_topology_change(g);
  ASSERT_EQ(layer_count(), 3u);
  wave.activations(0, a, rng);
  EXPECT_EQ(a, (std::vector<core::NodeId>{0, 3}));
  wave.activations(1, a, rng);
  EXPECT_EQ(a, (std::vector<core::NodeId>{1, 4}));
  EXPECT_EQ(wave.max_activation_hint(), 2u);

  // Other daemons: the hook is an explicit no-op (fairness is node-set-only).
  UniformSingleScheduler single(6);
  single.on_topology_change(g);
  BurstScheduler burst(6, 2);
  burst.on_topology_change(g);
}

}  // namespace
}  // namespace ssau::sched
