// Service layer: the Session command surface and the multi-session pool.
//
// The headline invariant is the differential one: a session multiplexed over
// the shared worker pool — at ANY worker count, under mixed interleaved
// traffic from many sessions — walks exactly the trajectory of a standalone
// engine driven serially with the same commands. On top of that: typed
// capability errors (TopologyDelta on a const-graph session), queue
// backpressure and drain-on-shutdown (no accepted command is ever dropped),
// quarantine isolation (a throwing session never disturbs siblings), the
// record/replay round trip through Session::apply, and the fault campaign's
// checkpoint path now sharing the service's `.prev` rotation guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/command_log.hpp"
#include "core/engine.hpp"
#include "core/faults.hpp"
#include "core/snapshot.hpp"
#include "graph/generators.hpp"
#include "sched/scheduler.hpp"
#include "service/service.hpp"
#include "service/session.hpp"
#include "unison/alg_au.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace ssau {
namespace {

namespace fs = std::filesystem;
using service::Command;
using service::Result;
using service::Session;
using service::SessionSpec;
using service::SimulationService;
using service::Status;
namespace cmd = service::cmd;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// --- Session: command surface ------------------------------------------------

TEST(Session, StepsMatchDirectEngineDrive) {
  SessionSpec spec;
  spec.automaton = "alg-au:4";
  spec.scheduler = "uniform-single";
  spec.graph = "complete:12";
  spec.seed = 42;
  Session session(spec);

  // The same collaborators rebuilt by hand, driven directly.
  Session reference(spec);
  for (int i = 0; i < 100; ++i) reference.engine().step();

  const Result r = session.apply(cmd::step(100));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.steps, 100u);
  EXPECT_EQ(core::engine_state_hash(session.engine()),
            core::engine_state_hash(reference.engine()));
}

TEST(Session, RunRoundsReportsExecutedSteps) {
  SessionSpec spec;
  spec.graph = "cycle:9";
  spec.scheduler = "synchronous";
  Session session(spec);
  const Result r = session.apply(cmd::run_rounds(7));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(session.engine().rounds_completed(), 7u);
  EXPECT_EQ(r.steps, session.engine().time());
}

TEST(Session, QueriesReportEngineState) {
  SessionSpec spec;
  spec.graph = "grid:4:5";
  Session session(spec);
  ASSERT_TRUE(session.apply(cmd::step(25)).ok());

  const Result stats = session.apply(cmd::query_stats());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.stats.nodes, 20u);
  EXPECT_EQ(stats.stats.edges, session.engine().graph().num_edges());
  EXPECT_EQ(stats.stats.time, 25u);
  EXPECT_TRUE(stats.stats.churn_capable);

  const Result config = session.apply(cmd::query_config());
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.config, session.engine().config());

  const Result hash = session.apply(cmd::query_hash());
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(hash.hash, core::engine_state_hash(session.engine()));

  const Result match = session.apply(cmd::expect_hash(hash.hash));
  EXPECT_TRUE(match.ok()) << match.error;
  const Result mismatch = session.apply(cmd::expect_hash(hash.hash ^ 1));
  EXPECT_EQ(mismatch.status, Status::kHashMismatch);
  EXPECT_EQ(mismatch.hash, hash.hash);  // observed digest still reported
}

TEST(Session, InvalidArgumentsComeBackTypedAndLeaveStateIntact) {
  SessionSpec spec;
  spec.graph = "complete:8";
  Session session(spec);
  ASSERT_TRUE(session.apply(cmd::step(10)).ok());
  const std::uint64_t before = core::engine_state_hash(session.engine());

  // Out-of-range node: the engine validates before mutating.
  const Result bad_node = session.apply(cmd::inject_state(99, 0));
  EXPECT_EQ(bad_node.status, Status::kInvalidArgument);
  EXPECT_FALSE(bad_node.error.empty());

  // Wrong-size configuration.
  const Result bad_config =
      session.apply(cmd::inject_configuration(core::Configuration(3, 0)));
  EXPECT_EQ(bad_config.status, Status::kInvalidArgument);

  // Checkpoint without a path.
  const Result bad_snap = session.apply(cmd::snapshot(""));
  EXPECT_EQ(bad_snap.status, Status::kInvalidArgument);

  EXPECT_EQ(core::engine_state_hash(session.engine()), before);
}

TEST(Session, MalformedSpecsThrowInvalidArgument) {
  SessionSpec spec;
  spec.automaton = "no-such-alg:3";
  EXPECT_THROW(Session{spec}, std::invalid_argument);
  spec.automaton = "alg-au:3";
  spec.graph = "no-such-family:7";
  EXPECT_THROW(Session{spec}, std::invalid_argument);
  spec.graph = "complete:8";
  spec.initial = "uniform:100000";  // out of range for |Q|
  EXPECT_THROW(Session{spec}, std::invalid_argument);
}

// --- Session: churn capability (the typed logic_error replacement) ----------

TEST(Session, TopologyDeltaOnConstGraphSessionIsTypedUnsupported) {
  const graph::Graph g = graph::complete(10);  // const: no churn capability
  const unison::AlgAu alg(3);
  const auto sched = sched::make_scheduler("uniform-single", g);
  core::Engine engine(g, alg, *sched, core::Configuration(10, 0), 1);
  ASSERT_FALSE(engine.churn_capable());

  Session session(engine);
  EXPECT_FALSE(session.churn_capable());
  graph::TopologyDelta delta;
  delta.remove = {{0, 1}};
  const Result r = session.apply(cmd::topology_delta(delta));
  EXPECT_EQ(r.status, Status::kUnsupported);
  EXPECT_FALSE(r.error.empty());
  // The raw engine still throws; the session surface is where the typed
  // mapping lives.
  EXPECT_THROW(engine.apply_topology_delta(delta), std::logic_error);
}

TEST(Session, OwningSessionsAreChurnCapable) {
  SessionSpec spec;
  spec.graph = "complete:10";
  Session session(spec);
  EXPECT_TRUE(session.churn_capable());
  graph::TopologyDelta delta;
  delta.remove = {{0, 1}};
  ASSERT_TRUE(session.apply(cmd::topology_delta(delta)).ok());
  EXPECT_EQ(session.engine().graph().num_edges(), 44u);
}

// --- Session: record/replay --------------------------------------------------

// Drives a mixed trajectory through a recording session, then replays the
// log two ways — through Session::restore + apply (the tools/replay path)
// and through the raw core::replay_commands loop — and expects both to land
// on the recorded trajectory, hash checks green.
TEST(Session, RecordReplayRoundTrip) {
  const std::string snap = temp_path("svc_roundtrip.snap");
  const std::string log_path = temp_path("svc_roundtrip.cmdlog");
  fs::remove(snap);
  fs::remove(snap + ".prev");
  fs::remove(log_path);

  SessionSpec spec;
  spec.automaton = "alg-au:4";
  spec.scheduler = "random-subset";
  spec.subset_p = 0.4;
  spec.graph = "complete:16";
  spec.seed = 99;
  Session session(spec);
  ASSERT_TRUE(session.apply(cmd::step(30)).ok());
  ASSERT_TRUE(session.apply(cmd::snapshot(snap)).ok());

  session.start_recording(log_path);
  ASSERT_TRUE(session.recording());
  ASSERT_TRUE(session.apply(cmd::step(20)).ok());
  ASSERT_TRUE(session.apply(cmd::inject_state(5, 0)).ok());
  graph::TopologyDelta delta;
  delta.remove = {{2, 3}};
  ASSERT_TRUE(session.apply(cmd::topology_delta(delta)).ok());
  ASSERT_TRUE(session.apply(cmd::run_rounds(3)).ok());
  ASSERT_TRUE(session.apply(cmd::query_hash()).ok());  // logged assertion
  ASSERT_TRUE(session.apply(cmd::step(10)).ok());
  ASSERT_TRUE(session.apply(cmd::query_hash()).ok());
  session.stop_recording();
  const std::uint64_t final_hash = core::engine_state_hash(session.engine());

  const core::CommandLog log = core::read_command_log(log_path);
  EXPECT_FALSE(log.truncated_tail);
  EXPECT_EQ(log.header.automaton, spec.automaton);
  EXPECT_EQ(log.header.scheduler, spec.scheduler);

  // Path 1: the session surface (what tools/replay drives).
  const auto bytes = core::snapshot::read_checkpoint(snap);
  const auto restored =
      Session::restore(bytes, service::spec_from_header(log.header));
  for (const Command& c : log.commands) {
    const Result r = restored->apply(c);
    EXPECT_TRUE(r.ok()) << service::status_name(r.status) << ": " << r.error;
  }
  EXPECT_EQ(core::engine_state_hash(restored->engine()), final_hash);

  // Path 2: the raw replay loop over the same decoded commands.
  const auto automaton = service::make_automaton(log.header.automaton);
  graph::Graph g = core::snapshot::restore_graph(bytes);
  const auto scheduler = sched::make_scheduler(
      log.header.scheduler, g, log.header.subset_p, log.header.burst);
  const auto engine = core::snapshot::restore(bytes, g, *automaton, *scheduler);
  const core::ReplayResult raw = core::replay_commands(*engine, log.commands);
  EXPECT_TRUE(raw.ok());
  EXPECT_EQ(raw.hash_checks, 2u);
  EXPECT_EQ(core::engine_state_hash(*engine), final_hash);

  fs::remove(snap);
  fs::remove(snap + ".prev");
  fs::remove(log_path);
}

TEST(Session, BorrowedSessionsCannotRecord) {
  graph::Graph g = graph::complete(6);
  const unison::AlgAu alg(3);
  const auto sched = sched::make_scheduler("uniform-single", g);
  core::Engine engine(g, alg, *sched, core::Configuration(6, 0), 1);
  Session session(engine);
  EXPECT_THROW(session.start_recording(temp_path("svc_norecord.cmdlog")),
               std::logic_error);
}

// --- SimulationService: differential bit-identity ---------------------------

struct Script {
  SessionSpec spec;
  std::vector<Command> commands;
};

// Mixed per-session traffic over heterogeneous specs; churny commands only
// on complete graphs (edge {0,1} always legal to drop and re-add).
std::vector<Script> make_scripts() {
  std::vector<Script> scripts;
  for (int i = 0; i < 6; ++i) {
    Script s;
    s.spec.seed = 1000 + i;
    switch (i % 3) {
      case 0:
        s.spec.automaton = "alg-au:4";
        s.spec.scheduler = "uniform-single";
        s.spec.graph = "complete:14";
        break;
      case 1:
        s.spec.automaton = "alg-mis:5";
        s.spec.scheduler = "random-subset";
        s.spec.subset_p = 0.3;
        s.spec.graph = "random:24:0.15";
        break;
      default:
        s.spec.automaton = "min-prop:16";
        s.spec.scheduler = "synchronous";
        s.spec.graph = "torus:4:5";
        break;
    }
    s.commands.push_back(cmd::step(20 + 5 * i));
    s.commands.push_back(cmd::inject_state(static_cast<core::NodeId>(i), 0));
    if (i % 3 == 0) {
      graph::TopologyDelta drop, heal;
      drop.remove = {{0, 1}};
      heal.add = {{0, 1}};
      s.commands.push_back(cmd::topology_delta(drop));
      s.commands.push_back(cmd::step(15));
      s.commands.push_back(cmd::topology_delta(heal));
    }
    s.commands.push_back(cmd::run_rounds(3));
    s.commands.push_back(cmd::query_hash());
    s.commands.push_back(cmd::step(10));
    s.commands.push_back(cmd::query_hash());
    scripts.push_back(std::move(s));
  }
  return scripts;
}

TEST(SimulationService, PooledSessionsBitIdenticalToStandaloneAtEveryWorkerCount) {
  const std::vector<Script> scripts = make_scripts();

  // Reference: each script driven serially through a standalone session.
  struct Reference {
    std::vector<std::uint64_t> hashes;  // one per query_hash command
    core::Configuration config;
    core::Time time = 0;
    std::uint64_t rounds = 0;
    std::uint64_t final_hash = 0;
  };
  std::vector<Reference> expected;
  for (const Script& s : scripts) {
    SessionSpec spec = s.spec;
    spec.options.thread_count = 1;  // trajectories are thread-count-invariant,
                                    // so any resolution the service picks
                                    // matches this serial reference
    Session session(spec);
    Reference ref;
    for (const Command& c : s.commands) {
      const Result r = session.apply(c);
      ASSERT_TRUE(r.ok()) << r.error;
      if (c.type == core::CommandType::kQueryHash) ref.hashes.push_back(r.hash);
    }
    ref.config = session.engine().config();
    ref.time = session.engine().time();
    ref.rounds = session.engine().rounds_completed();
    ref.final_hash = core::engine_state_hash(session.engine());
    expected.push_back(std::move(ref));
  }

  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    service::ServiceOptions options;
    options.workers = workers;
    SimulationService svc(options);
    ASSERT_EQ(svc.workers(), workers);

    std::vector<SimulationService::SessionId> ids;
    for (const Script& s : scripts) ids.push_back(svc.open_session(s.spec));

    // Interleave: one command per session per round, so distinct sessions
    // genuinely contend for the pool mid-trajectory.
    std::vector<std::vector<std::future<Result>>> futures(scripts.size());
    std::size_t longest = 0;
    for (const Script& s : scripts) {
      longest = std::max(longest, s.commands.size());
    }
    for (std::size_t k = 0; k < longest; ++k) {
      for (std::size_t i = 0; i < scripts.size(); ++i) {
        if (k < scripts[i].commands.size()) {
          futures[i].push_back(svc.submit(ids[i], scripts[i].commands[k]));
        }
      }
    }
    svc.drain();

    for (std::size_t i = 0; i < scripts.size(); ++i) {
      SCOPED_TRACE("session " + std::to_string(i));
      std::vector<std::uint64_t> hashes;
      for (std::size_t k = 0; k < futures[i].size(); ++k) {
        const Result r = futures[i][k].get();
        ASSERT_TRUE(r.ok()) << r.error;
        if (scripts[i].commands[k].type == core::CommandType::kQueryHash) {
          hashes.push_back(r.hash);
        }
      }
      EXPECT_EQ(hashes, expected[i].hashes);
      Session& session = svc.session(ids[i]);
      EXPECT_EQ(session.engine().config(), expected[i].config);
      EXPECT_EQ(session.engine().time(), expected[i].time);
      EXPECT_EQ(session.engine().rounds_completed(), expected[i].rounds);
      EXPECT_EQ(core::engine_state_hash(session.engine()),
                expected[i].final_hash);
    }
    svc.shutdown();
  }
}

// --- SimulationService: queue semantics --------------------------------------

TEST(SimulationService, BackpressureBoundsPendingCommands) {
  service::ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 3;
  SimulationService svc(options);
  SessionSpec spec;
  spec.graph = "complete:32";
  const auto id = svc.open_session(spec);

  std::vector<std::future<Result>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(svc.submit(id, cmd::step(50)));  // blocks at capacity
  }
  svc.drain();
  EXPECT_LE(svc.peak_pending(), options.queue_capacity);
  EXPECT_EQ(svc.commands_completed(), 40u);
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(svc.session(id).engine().time(), 40u * 50u);
  EXPECT_EQ(svc.latency_samples().size(), 40u);
}

TEST(SimulationService, ShutdownDrainsEveryAcceptedCommand) {
  service::ServiceOptions options;
  options.workers = 2;
  SimulationService svc(options);
  SessionSpec spec;
  spec.graph = "complete:24";
  const auto a = svc.open_session(spec);
  spec.seed = 1;
  const auto b = svc.open_session(spec);

  std::vector<std::future<Result>> futures;
  for (int i = 0; i < 25; ++i) {
    futures.push_back(svc.submit(a, cmd::step(20)));
    futures.push_back(svc.submit(b, cmd::step(20)));
  }
  svc.shutdown();  // immediately: must still complete all 50
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(svc.session(a).engine().time(), 500u);
  EXPECT_EQ(svc.session(b).engine().time(), 500u);
  EXPECT_THROW(svc.submit(a, cmd::step()), std::runtime_error);
  EXPECT_THROW(svc.open_session(spec), std::runtime_error);
  svc.shutdown();  // idempotent
}

TEST(SimulationService, UnknownSessionIdThrows) {
  SimulationService svc({.workers = 1});
  EXPECT_THROW(svc.submit(123, cmd::step()), std::out_of_range);
  EXPECT_THROW(static_cast<void>(svc.session(123)), std::out_of_range);
  EXPECT_FALSE(svc.quarantined(123));
}

// --- SimulationService: pooled engine thread budgets -------------------------

TEST(SimulationService, AutoThreadCountDividesHardwareAcrossWorkers) {
  // thread_count == 0 must resolve through recommended_threads(workers):
  // `workers` concurrently executing sessions never multiply into
  // workers x cores engine threads.
  for (const unsigned workers : {1u, 2u, 8u, 1024u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    SimulationService svc({.workers = workers});
    SessionSpec spec;
    spec.automaton = "alg-au:4";
    spec.scheduler = "synchronous";
    spec.graph = "cycle:64";
    spec.seed = 7;
    spec.options.thread_count = 0;  // "auto"
    const auto id = svc.open_session(spec);
    const unsigned resolved = svc.session(id).engine().options().thread_count;
    EXPECT_EQ(resolved,
              core::ParallelEngine::recommended_threads(svc.workers()));
    EXPECT_GE(resolved, 1u);
    EXPECT_LE(resolved * svc.workers(),
              std::max(core::ParallelEngine::resolve_thread_count(0),
                       svc.workers()));
  }
  // With at least as many workers as cores, auto sessions must be serial.
  {
    const unsigned hw = core::ParallelEngine::resolve_thread_count(0);
    SimulationService svc({.workers = hw});
    SessionSpec spec;
    spec.automaton = "alg-au:4";
    spec.scheduler = "synchronous";
    spec.graph = "cycle:64";
    spec.seed = 7;
    spec.options.thread_count = 0;
    const auto id = svc.open_session(spec);
    EXPECT_EQ(svc.session(id).engine().options().thread_count, 1u);
  }
}

TEST(SimulationService, ExplicitThreadCountSurvivesPooling) {
  // Deliberate oversubscription (bench experiments) stays expressible: an
  // explicit value passes through verbatim and the session still walks the
  // bit-identical trajectory.
  SimulationService svc({.workers = 2});
  SessionSpec spec;
  spec.automaton = "alg-au:4";
  spec.scheduler = "synchronous";
  spec.graph = "random:96:0.08";
  spec.seed = 11;
  spec.options.thread_count = 4;
  const auto id = svc.open_session(spec);
  EXPECT_EQ(svc.session(id).engine().options().thread_count, 4u);

  auto fut = svc.submit(id, cmd::run_rounds(20));
  ASSERT_TRUE(fut.get().ok());
  svc.drain();

  spec.options.thread_count = 1;
  Session serial(spec);
  ASSERT_TRUE(serial.apply(cmd::run_rounds(20)).ok());
  EXPECT_EQ(svc.session(id).engine().config(), serial.engine().config());
}

// --- SimulationService: quarantine isolation ---------------------------------

// Throws an exception the Session cannot type (not invalid_argument /
// logic_error / SnapshotError) after `fuse` activations — the kError path.
class FusedAutomaton final : public core::Automaton {
 public:
  explicit FusedAutomaton(int fuse) : fuse_(fuse) {}
  [[nodiscard]] core::StateId state_count() const override { return 4; }
  [[nodiscard]] bool is_output(core::StateId) const override { return false; }
  [[nodiscard]] std::int64_t output(core::StateId) const override { return 0; }
  [[nodiscard]] core::StateId step(core::StateId q, const core::Signal&,
                                   util::Rng&) const override {
    if (++activations_ > fuse_) throw std::runtime_error("fuse blown");
    return (q + 1) % 4;
  }

 private:
  int fuse_;
  mutable std::atomic<int> activations_{0};
};

TEST(SimulationService, QuarantineIsolatesThrowingSession) {
  graph::Graph g = graph::complete(8);
  const FusedAutomaton alg(30);
  const auto sched = sched::make_scheduler("uniform-single", g);
  core::Engine engine(g, alg, *sched, core::Configuration(8, 0), 3);

  SimulationService svc({.workers = 2});
  const auto bad = svc.adopt_session(std::make_unique<Session>(engine));
  SessionSpec spec;
  spec.graph = "complete:12";
  const auto good = svc.open_session(spec);

  std::vector<std::future<Result>> bad_futures;
  std::vector<std::future<Result>> good_futures;
  for (int i = 0; i < 10; ++i) {
    bad_futures.push_back(svc.submit(bad, cmd::step(10)));
    good_futures.push_back(svc.submit(good, cmd::step(10)));
  }
  svc.drain();

  // The fused session blew up mid-script: the faulting command reports
  // kError, everything after it kQuarantined. Nothing hangs or leaks.
  ASSERT_TRUE(svc.quarantined(bad));
  EXPECT_NE(svc.quarantine_reason(bad).find("fuse blown"), std::string::npos);
  bool saw_error = false;
  for (auto& f : bad_futures) {
    const Result r = f.get();
    if (r.status == Status::kError) {
      EXPECT_FALSE(saw_error) << "exactly one command faults";
      saw_error = true;
    } else if (saw_error) {
      EXPECT_EQ(r.status, Status::kQuarantined);
    } else {
      EXPECT_TRUE(r.ok());
    }
  }
  EXPECT_TRUE(saw_error);

  // The sibling is untouched: all commands applied, trajectory identical to
  // a standalone run.
  for (auto& f : good_futures) EXPECT_TRUE(f.get().ok());
  EXPECT_FALSE(svc.quarantined(good));
  SessionSpec ref_spec = spec;
  ref_spec.options.thread_count = 1;
  Session reference(ref_spec);
  ASSERT_TRUE(reference.apply(cmd::step(100)).ok());
  EXPECT_EQ(core::engine_state_hash(svc.session(good).engine()),
            core::engine_state_hash(reference.engine()));
}

// --- fault campaign: checkpoints through the Session path --------------------

TEST(FaultCampaign, CheckpointsRotatePrevLikeTheService) {
  const std::string path = temp_path("svc_campaign.snap");
  fs::remove(path);
  fs::remove(path + ".prev");

  SessionSpec spec;
  spec.automaton = "min-prop:8";
  spec.scheduler = "uniform-single";
  spec.graph = "complete:10";
  spec.initial = "uniform:7";
  spec.seed = 5;
  Session session(spec);

  core::FaultCampaignOptions options;
  options.bursts = 4;
  options.nodes_per_burst = 2;
  options.recovery_budget = 10000;
  options.checkpoint_every = 1;
  options.checkpoint_path = path;
  util::Rng rng(17);
  // min-prop legitimacy: agreement (everyone at the propagated minimum).
  const auto result = core::run_fault_campaign(
      session.engine(),
      [](const core::Configuration& c) {
        for (const auto q : c) {
          if (q != c.front()) return false;
        }
        return true;
      },
      options, rng);

  // Baseline + one per burst; after >= 2 writes the previous checkpoint has
  // rotated to `.prev` and BOTH generations validate — the write_checkpoint
  // guarantee the campaign now inherits from the Session snapshot command.
  EXPECT_GE(result.checkpoints_written, 2u);
  EXPECT_NO_THROW(core::snapshot::restore_graph(core::snapshot::read_file(path)));
  EXPECT_NO_THROW(
      core::snapshot::restore_graph(core::snapshot::read_file(path + ".prev")));

  fs::remove(path);
  fs::remove(path + ".prev");
}

}  // namespace
}  // namespace ssau
