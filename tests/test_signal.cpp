// Tests for the SA set-broadcast signal: set semantics (presence only,
// no counts, no identities).
#include "core/signal.hpp"

#include <gtest/gtest.h>

namespace ssau::core {
namespace {

TEST(Signal, DeduplicatesAndSorts) {
  const Signal s = Signal::from_states({5, 1, 5, 3, 1});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.states()[0], 1u);
  EXPECT_EQ(s.states()[1], 3u);
  EXPECT_EQ(s.states()[2], 5u);
}

TEST(Signal, ContainsIsPresenceOnly) {
  const Signal s = Signal::from_states({2, 2, 2});
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.size(), 1u);  // multiplicity erased: the SA "no counting" rule
}

TEST(Signal, AnyAll) {
  const Signal s = Signal::from_states({2, 4, 6});
  EXPECT_TRUE(s.any([](StateId q) { return q == 4; }));
  EXPECT_FALSE(s.any([](StateId q) { return q == 5; }));
  EXPECT_TRUE(s.all([](StateId q) { return q % 2 == 0; }));
  EXPECT_FALSE(s.all([](StateId q) { return q < 6; }));
}

TEST(Signal, EqualSignalsCompareEqual) {
  // Identical presence sets from different multiplicities/orders: the same
  // signal, as the SA model demands.
  const Signal a = Signal::from_states({1, 2, 2, 3});
  const Signal b = Signal::from_states({3, 1, 2});
  EXPECT_EQ(a, b);
}

TEST(Signal, EmptySignal) {
  const Signal s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(0));
  EXPECT_TRUE(s.all([](StateId) { return false; }));
  EXPECT_FALSE(s.any([](StateId) { return true; }));
}

}  // namespace
}  // namespace ssau::core
