// The signal-field layer (core/signal_field.hpp): unit-level equivalence of
// delta maintenance to a fresh rebuild, engine routing policy, and the
// differential suite pinning the field-sensed engine bit-identical to the
// legacy interpreted oracle for AU + MIS + LE across ALL eight schedulers
// (including burst and permutation, which have no golden-trace coverage) at
// thread counts {1, 2, 4, 8} — configurations, rounds, activation counts,
// and listener streams.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/signal_field.hpp"
#include "graph/generators.hpp"
#include "le/alg_le.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"
#include "sync/simple_sync_algs.hpp"
#include "sync/synchronizer.hpp"
#include "unison/alg_au.hpp"
#include "util/rng.hpp"

namespace ssau {
namespace {

std::vector<std::string> all_scheduler_names() {
  std::vector<std::string> names = sched::async_scheduler_names();
  names.insert(names.begin(), "synchronous");
  return names;
}

/// Multiplicity of q in N+(v) recomputed from scratch — the oracle every
/// incremental counter is checked against.
std::uint32_t brute_count(const graph::Graph& g, const core::Configuration& c,
                          core::NodeId v, core::StateId q) {
  std::uint32_t n = c[v] == q ? 1 : 0;
  for (const core::NodeId u : g.neighbors(v)) n += c[u] == q ? 1 : 0;
  return n;
}

/// Asserts the field equals a fresh rebuild of `c`: every counter, every
/// presence bit, and the sense() output (span, mask, has_mask) against an
/// independent SignalScratch rescan.
void expect_field_matches(const core::SignalField& field, const graph::Graph& g,
                          const core::Configuration& c,
                          core::StateId state_count) {
  core::SignalScratch rescan;
  std::vector<core::StateId> scratch;
  for (core::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (core::StateId q = 0; q < state_count; ++q) {
      ASSERT_EQ(field.count_of(v, q), brute_count(g, c, v, q))
          << "v=" << v << " q=" << q;
    }
    const core::SignalView got = field.sense(v, scratch);
    const core::SignalView want = rescan.sense(g, c, v);
    ASSERT_EQ(std::vector<core::StateId>(got.states().begin(),
                                         got.states().end()),
              std::vector<core::StateId>(want.states().begin(),
                                         want.states().end()))
        << "sense span mismatch at v=" << v;
    ASSERT_EQ(got.has_mask(), want.has_mask());
    if (got.has_mask()) {
      ASSERT_EQ(got.mask(), want.mask());
    }
    if (field.mask_exact()) {
      ASSERT_EQ(field.mask_of(v), want.mask());
    }
  }
}

/// Fuzz: random single-node transitions patched incrementally must keep the
/// field equal to a from-scratch rebuild at every step.
void fuzz_transitions(core::StateId state_count, int rounds,
                      std::uint64_t seed) {
  util::Rng rng(seed);
  const graph::Graph g = graph::random_connected(24, 0.2, rng);
  core::Configuration c(g.num_nodes());
  for (auto& q : c) q = rng.below(state_count);
  core::SignalField field(g, state_count, c);
  expect_field_matches(field, g, c, state_count);
  for (int i = 0; i < rounds; ++i) {
    const auto v = static_cast<core::NodeId>(rng.below(g.num_nodes()));
    core::StateId next = rng.below(state_count);
    if (next == c[v]) continue;
    field.apply_transition(v, c[v], next);
    c[v] = next;
    if (i % 16 == 0) expect_field_matches(field, g, c, state_count);
  }
  expect_field_matches(field, g, c, state_count);
}

TEST(SignalField, DenseSingleWordDeltaEqualsRebuild) {
  fuzz_transitions(/*state_count=*/30, /*rounds=*/400, /*seed=*/41);
}

TEST(SignalField, DenseMultiWordDeltaEqualsRebuild) {
  // 64 < |Q| <= kDenseStateLimit: multi-word presence bitmap, mask_exact
  // false, still the flat counter table.
  fuzz_transitions(/*state_count=*/130, /*rounds=*/400, /*seed=*/43);
}

TEST(SignalField, SparseMultisetDeltaEqualsRebuild) {
  // |Q| > kDenseStateLimit routes to the compact sorted-multiset fallback.
  fuzz_transitions(/*state_count=*/1000, /*rounds=*/400, /*seed=*/47);
}

TEST(SignalField, RepresentationRouting) {
  const graph::Graph g = graph::cycle(8);
  const core::Configuration c(8, 0);
  EXPECT_TRUE(core::SignalField(g, 64, c).dense());
  EXPECT_TRUE(core::SignalField(g, 64, c).mask_exact());
  EXPECT_TRUE(core::SignalField(g, core::SignalField::kDenseStateLimit, c).dense());
  EXPECT_FALSE(
      core::SignalField(g, core::SignalField::kDenseStateLimit, c).mask_exact());
  EXPECT_FALSE(
      core::SignalField(g, core::SignalField::kDenseStateLimit + 1, c).dense());

  // n bounds the table too: a node count that would blow the dense byte
  // budget routes to the sparse multiset even with an eligible |Q|.
  constexpr core::StateId kQ = 256;
  const auto big_n = static_cast<core::NodeId>(
      core::SignalField::kDenseMaxCounterBytes / (kQ * sizeof(std::uint16_t)) +
      1);
  const graph::Graph big(big_n, {{0, 1}});
  EXPECT_FALSE(
      core::SignalField(big, kQ, core::Configuration(big_n, 0)).dense());
}

TEST(SignalField, RebuildRecoversFromArbitraryOverwrite) {
  util::Rng rng(59);
  const graph::Graph g = graph::wheel(9);
  core::Configuration c(g.num_nodes());
  for (auto& q : c) q = rng.below(20);
  core::SignalField field(g, 20, c);
  for (auto& q : c) q = rng.below(20);  // overwrite behind the field's back
  field.rebuild(c);
  expect_field_matches(field, g, c, 20);
}

// --- engine routing policy ---------------------------------------------------

TEST(SignalFieldRouting, AutoEnablesOnlyTheSerialDaemonRegime) {
  util::Rng rng(61);
  // Dense enough that avg_degree clears kSignalFieldMinAvgDegree (the
  // heavy-sense floor — AlgMis is randomized, so its rescan path is far
  // more than an OR-loop).
  const graph::Graph g = graph::random_connected(40, 0.3, rng);
  ASSERT_GE(g.avg_degree(), core::kSignalFieldMinAvgDegree);
  const mis::AlgMis alg({.diameter_bound = 3});
  const core::Configuration c0 =
      core::random_configuration(alg, g.num_nodes(), rng);

  const auto active = [&](const std::string& sched_name,
                          core::EngineOptions opts = {}) {
    auto sched = sched::make_scheduler(sched_name, g);
    core::Engine e(g, alg, *sched, c0, 7, opts);
    return e.signal_field_active();
  };

  // Single-node daemons: the regime the field exists for.
  EXPECT_TRUE(active("uniform-single"));
  EXPECT_TRUE(active("rotating-single"));
  EXPECT_TRUE(active("permutation"));
  EXPECT_TRUE(active("burst"));
  // Full activation and large-set daemons: rescan / sharded kernels win.
  EXPECT_FALSE(active("synchronous"));
  EXPECT_FALSE(active("laggard"));        // hint n-1 > n/2
  EXPECT_FALSE(active("random-subset"));  // hint n
  // Explicit overrides beat the heuristic.
  EXPECT_FALSE(active("uniform-single",
                      {.signal_field = core::SignalFieldMode::kOff}));
  EXPECT_TRUE(
      active("synchronous", {.signal_field = core::SignalFieldMode::kOn}));
  // The legacy oracle never owns a field, even when forced.
  EXPECT_FALSE(active("uniform-single",
                      {.fast_path = false,
                       .signal_field = core::SignalFieldMode::kOn}));
}

TEST(SignalFieldRouting, AutoAppliesTheMaskKernelDegreeFloor) {
  // AlgAu ships a native O(1) mask kernel, so kAuto demands the stricter
  // kSignalFieldMaskKernelMinAvgDegree: a mid-density graph routes it to
  // the rescan while heavy-sense AlgMis still gets the field.
  util::Rng rng(62);
  const graph::Graph mid = graph::random_connected(40, 0.3, rng);
  ASSERT_GE(mid.avg_degree(), core::kSignalFieldMinAvgDegree);
  ASSERT_LT(mid.avg_degree(), core::kSignalFieldMaskKernelMinAvgDegree);
  const unison::AlgAu au(2);
  {
    auto sched = sched::make_scheduler("uniform-single", mid);
    core::Engine e(mid, au, *sched,
                   core::random_configuration(au, mid.num_nodes(), rng), 7);
    EXPECT_FALSE(e.signal_field_active());
  }
  // A near-clique clears even the mask-kernel floor.
  const graph::Graph dense = graph::damaged_clique(40, 0.05, rng);
  ASSERT_GE(dense.avg_degree(), core::kSignalFieldMaskKernelMinAvgDegree);
  {
    auto sched = sched::make_scheduler("uniform-single", dense);
    core::Engine e(dense, au, *sched,
                   core::random_configuration(au, dense.num_nodes(), rng), 7);
    EXPECT_TRUE(e.signal_field_active());
  }
}

TEST(SignalFieldRouting, AutoBailsOutWhenPatchingOutweighsRescans) {
  // A rotation daemon re-activates each node exactly once per cycle, so
  // unison clocks advance on nearly every activation: the kAuto field on a
  // mask-kernel automaton observes patches outweighing saved rescans and
  // self-disables at a window boundary. Under the randomized single daemon
  // the coupon-collector re-activation pattern keeps the transition rate
  // low and the field stays. (Bit-identity is untouched either way — the
  // differential suite below covers both sensing paths.)
  util::Rng rng(97);
  const graph::Graph g = graph::damaged_clique(48, 0.05, rng);
  ASSERT_GE(g.avg_degree(), core::kSignalFieldMaskKernelMinAvgDegree);
  const unison::AlgAu au(1);
  const core::Configuration c0 = core::uniform_configuration(g.num_nodes(), 0);
  const auto active_after = [&](const char* sched_name) {
    auto sched = sched::make_scheduler(sched_name, g);
    core::Engine e(g, au, *sched, c0, 101);
    EXPECT_TRUE(e.signal_field_active()) << sched_name;
    const auto steps = static_cast<int>(2 * core::kSignalFieldAdaptiveWindow);
    for (int s = 0; s < steps; ++s) e.step();
    return e.signal_field_active();
  };
  EXPECT_FALSE(active_after("rotating-single"));
  EXPECT_TRUE(active_after("uniform-single"));
}

TEST(SignalFieldRouting, AutoDeclinesSparseNeighborhoods) {
  // A path's avg degree (< 2) sits below every routing floor: the rescan
  // reads two or three states, delta maintenance cannot pay for itself.
  const graph::Graph g = graph::path(32);
  ASSERT_LT(g.avg_degree(), core::kSignalFieldMinAvgDegree);
  const mis::AlgMis alg({.diameter_bound = 6});
  util::Rng rng(63);
  auto sched = sched::make_scheduler("uniform-single", g);
  core::Engine e(g, alg, *sched,
                 core::random_configuration(alg, g.num_nodes(), rng), 7);
  EXPECT_FALSE(e.signal_field_active());
}

// --- differential suite ------------------------------------------------------

/// Field-sensed engine (signal_field forced ON, tiny sparse threshold so the
/// large-set daemons shard) vs the legacy interpreted oracle, in lockstep.
void expect_field_matches_oracle(const graph::Graph& g,
                                 const core::Automaton& alg,
                                 const core::Configuration& initial,
                                 const std::string& sched_name,
                                 unsigned threads, std::uint64_t seed,
                                 int steps) {
  auto field_sched = sched::make_scheduler(sched_name, g);
  auto legacy_sched = sched::make_scheduler(sched_name, g);
  core::Engine field(g, alg, *field_sched, initial, seed,
                     core::EngineOptions{
                         .thread_count = threads,
                         .sparse_activation_threshold = 2,
                         .signal_field = core::SignalFieldMode::kOn});
  core::Engine legacy(g, alg, *legacy_sched, initial, seed,
                      core::EngineOptions{.fast_path = false});
  ASSERT_TRUE(field.signal_field_active());
  for (int s = 0; s < steps; ++s) {
    field.step();
    legacy.step();
    ASSERT_EQ(field.config(), legacy.config())
        << sched_name << " threads=" << threads << " diverged at step " << s;
    ASSERT_EQ(field.time(), legacy.time());
    ASSERT_EQ(field.rounds_completed(), legacy.rounds_completed())
        << sched_name << " threads=" << threads << " round drift at step " << s;
    ASSERT_EQ(field.round_index_now(), legacy.round_index_now());
  }
  for (core::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(field.activation_count(v), legacy.activation_count(v));
  }
}

TEST(SignalFieldDifferential, AlgAuAllSchedulersAllThreadCounts) {
  const unison::AlgAu alg(2);
  util::Rng rng(67);
  const graph::Graph g = graph::random_bounded_diameter(24, 2, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);
  for (const std::string& sched_name : all_scheduler_names()) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      expect_field_matches_oracle(g, alg, c0, sched_name, threads, 211, 200);
    }
  }
}

TEST(SignalFieldDifferential, AlgMisAllSchedulersAllThreadCounts) {
  // Randomized: additionally pins the per-node rng draw sequences (a field
  // sense that consulted the rng differently would diverge in a few steps).
  const mis::AlgMis alg({.diameter_bound = 2});
  util::Rng rng(71);
  const graph::Graph g = graph::random_bounded_diameter(20, 2, rng);
  const core::Configuration c0 =
      mis::mis_adversarial_configuration("random", alg, g, rng);
  for (const std::string& sched_name : all_scheduler_names()) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      expect_field_matches_oracle(g, alg, c0, sched_name, threads, 223, 200);
    }
  }
}

TEST(SignalFieldDifferential, AlgLeAllSchedulersAllThreadCounts) {
  const le::AlgLe alg({.diameter_bound = 2});
  util::Rng rng(73);
  const graph::Graph g = graph::random_bounded_diameter(18, 2, rng);
  const core::Configuration c0 =
      le::le_adversarial_configuration("random", alg, g, rng);
  for (const std::string& sched_name : all_scheduler_names()) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      expect_field_matches_oracle(g, alg, c0, sched_name, threads, 227, 200);
    }
  }
}

TEST(SignalFieldDifferential, SparseRepresentationSynchronizerProduct) {
  // The synchronizer product space (|Q| = 8^2 * 18 = 1152) exercises the
  // sorted-multiset representation end to end. The synchronizer is not
  // parallel_safe, so the engine stays serial regardless of thread_count.
  const sync::MinPropagation inner(8);
  const sync::Synchronizer alg(inner, 1);
  ASSERT_GT(alg.state_count(), core::SignalField::kDenseStateLimit);
  util::Rng rng(79);
  const graph::Graph g = graph::wheel(9);
  const core::Configuration c0 =
      core::random_configuration(alg, g.num_nodes(), rng);
  for (const char* sched_name : {"uniform-single", "burst", "permutation"}) {
    expect_field_matches_oracle(g, alg, c0, sched_name, 1, 229, 120);
  }
}

TEST(SignalFieldDifferential, ListenerStreamsMatchOracle) {
  // The field-sensed listener path materializes signals from the field into
  // a reused scratch Signal; the observed streams (and signal contents) must
  // equal the legacy engine's allocating path exactly.
  const unison::AlgAu alg(1);
  util::Rng rng(83);
  const graph::Graph g = graph::random_bounded_diameter(16, 2, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);
  struct Event {
    core::NodeId v;
    core::StateId from, to;
    core::Time t;
    bool operator==(const Event&) const = default;
  };
  for (const char* sched_name : {"burst", "permutation", "uniform-single"}) {
    auto run = [&](core::EngineOptions opts) {
      auto sched = sched::make_scheduler(sched_name, g);
      core::Engine engine(g, alg, *sched, c0, 233, opts);
      std::vector<Event> events;
      std::vector<core::Signal> signals;
      engine.set_transition_listener(
          [&](core::NodeId v, core::StateId from, core::StateId to,
              const core::Signal& sig, core::Time t) {
            events.push_back({v, from, to, t});
            signals.push_back(sig);  // must copy: the reference is scratch
          });
      for (int s = 0; s < 300; ++s) engine.step();
      return std::make_pair(events, signals);
    };
    const auto [field_events, field_signals] =
        run({.signal_field = core::SignalFieldMode::kOn});
    const auto [legacy_events, legacy_signals] = run({.fast_path = false});
    EXPECT_EQ(field_events, legacy_events) << sched_name;
    EXPECT_EQ(field_signals, legacy_signals) << sched_name;
    EXPECT_FALSE(field_events.empty()) << sched_name;
  }
}

TEST(SignalFieldDifferential, InjectionsStayBitIdentical) {
  // inject_state patches a live field in place; inject_configuration marks
  // it stale for a lazy rebuild. Either way the continued run must track the
  // oracle exactly.
  const unison::AlgAu alg(2);
  util::Rng rng(89);
  const graph::Graph g = graph::random_bounded_diameter(20, 2, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);
  core::Configuration mid(g.num_nodes());
  for (auto& q : mid) q = rng.below(alg.state_count());

  auto field_sched = sched::make_scheduler("uniform-single", g);
  auto legacy_sched = sched::make_scheduler("uniform-single", g);
  core::Engine field(g, alg, *field_sched, c0, 239,
                     core::EngineOptions{
                         .signal_field = core::SignalFieldMode::kOn});
  core::Engine legacy(g, alg, *legacy_sched, c0, 239,
                      core::EngineOptions{.fast_path = false});
  ASSERT_TRUE(field.signal_field_active());
  auto lockstep = [&](int steps) {
    for (int s = 0; s < steps; ++s) {
      field.step();
      legacy.step();
      ASSERT_EQ(field.config(), legacy.config()) << "step " << s;
    }
  };
  lockstep(60);
  field.inject_state(3, 0);
  legacy.inject_state(3, 0);
  lockstep(60);
  field.inject_configuration(mid);
  legacy.inject_configuration(mid);
  EXPECT_TRUE(field.signal_field_stale());
  lockstep(1);  // the next field sense rebuilds lazily
  EXPECT_FALSE(field.signal_field_stale());
  lockstep(59);
  ASSERT_EQ(field.rounds_completed(), legacy.rounds_completed());
}

TEST(SignalFieldDifferential, FullActivationFieldStaysStaleAfterInjection) {
  // A forced-on field under a synchronous scheduler is patched per step but
  // never sensed, so an injection leaves it stale forever — the accessor
  // pair (signal_field(), signal_field_stale()) is how observability
  // readers learn its counters describe the pre-injection configuration.
  const unison::AlgAu alg(1);
  util::Rng rng(91);
  const graph::Graph g = graph::wheel(8);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);
  auto sched = sched::make_scheduler("synchronous", g);
  core::Engine e(g, alg, *sched, c0, 241,
                 core::EngineOptions{
                     .signal_field = core::SignalFieldMode::kOn});
  ASSERT_TRUE(e.signal_field_active());
  for (int s = 0; s < 5; ++s) e.step();
  EXPECT_FALSE(e.signal_field_stale());
  core::Configuration mid(g.num_nodes());
  for (auto& q : mid) q = rng.below(alg.state_count());
  e.inject_configuration(mid);
  EXPECT_TRUE(e.signal_field_stale());
  for (int s = 0; s < 5; ++s) e.step();
  EXPECT_TRUE(e.signal_field_stale());  // nothing here senses -> stays stale
}

}  // namespace
}  // namespace ssau
