// Tests for the zero-allocation signal fast path: SignalView semantics vs
// Signal, the SignalScratch bitmask/sparse construction paths, and
// make_signal_view projections.
#include "core/signal_view.hpp"

#include <gtest/gtest.h>

#include "core/signal.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ssau::core {
namespace {

TEST(SignalView, FromSignalSmallStatesCarriesMask) {
  const Signal sig = Signal::from_states({5, 1, 5, 3, 1});
  const SignalView view(sig);
  ASSERT_TRUE(view.has_mask());
  EXPECT_EQ(view.mask(), (1u << 1) | (1u << 3) | (1u << 5));
  EXPECT_EQ(view.size(), 3u);
  EXPECT_TRUE(view.contains(1));
  EXPECT_TRUE(view.contains(3));
  EXPECT_TRUE(view.contains(5));
  EXPECT_FALSE(view.contains(0));
  EXPECT_FALSE(view.contains(4));
  EXPECT_FALSE(view.contains(64));
  EXPECT_FALSE(view.contains(1000));
}

TEST(SignalView, FromSignalLargeStatesFallsBackToSparse) {
  const Signal sig = Signal::from_states({2, 64, 100});
  const SignalView view(sig);
  EXPECT_FALSE(view.has_mask());
  EXPECT_TRUE(view.contains(2));
  EXPECT_TRUE(view.contains(64));
  EXPECT_TRUE(view.contains(100));
  EXPECT_FALSE(view.contains(3));
}

TEST(SignalView, AnyAllMatchSignal) {
  const Signal sig = Signal::from_states({2, 4, 6});
  const SignalView view(sig);
  EXPECT_TRUE(view.any([](StateId q) { return q == 4; }));
  EXPECT_FALSE(view.any([](StateId q) { return q == 5; }));
  EXPECT_TRUE(view.all([](StateId q) { return q % 2 == 0; }));
  EXPECT_FALSE(view.all([](StateId q) { return q > 2; }));
}

TEST(SignalView, MaterializeRoundTrips) {
  const Signal sig = Signal::from_states({9, 0, 63, 9});
  const SignalView view(sig);
  EXPECT_EQ(view.materialize(), sig);
}

TEST(SignalScratch, BitmaskPathMatchesFromStates) {
  const graph::Graph g = graph::cycle(6);
  const Configuration c{0, 5, 5, 63, 2, 0};
  SignalScratch scratch;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::vector<StateId> sensed{c[v]};
    for (const NodeId u : g.neighbors(v)) sensed.push_back(c[u]);
    const Signal expected = Signal::from_states(std::move(sensed));
    const SignalView view = scratch.sense(g, c, v);
    ASSERT_TRUE(view.has_mask());
    EXPECT_EQ(view.materialize(), expected) << "node " << v;
    EXPECT_EQ(view.mask(), SignalView(expected).mask());
  }
}

TEST(SignalScratch, SparsePathMatchesFromStates) {
  const graph::Graph g = graph::star(5);
  const Configuration c{1000, 3, 64, 3, 1000};
  SignalScratch scratch;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::vector<StateId> sensed{c[v]};
    for (const NodeId u : g.neighbors(v)) sensed.push_back(c[u]);
    const Signal expected = Signal::from_states(std::move(sensed));
    const SignalView view = scratch.sense(g, c, v);
    EXPECT_FALSE(view.has_mask());
    EXPECT_EQ(view.materialize(), expected) << "node " << v;
  }
}

TEST(SignalScratch, MixedBoundaryStates) {
  // Exactly 63 stays on the bitmask path; exactly 64 leaves it.
  const graph::Graph g = graph::path(2);
  SignalScratch scratch;
  EXPECT_TRUE(scratch.sense(g, {63, 0}, 0).has_mask());
  EXPECT_FALSE(scratch.sense(g, {64, 0}, 0).has_mask());
  EXPECT_FALSE(scratch.sense(g, {0, 64}, 0).has_mask());
}

TEST(SignalScratch, RandomizedAgainstFromStates) {
  util::Rng rng(42);
  const graph::Graph g = graph::random_connected(40, 0.1, rng);
  SignalScratch scratch;
  for (int trial = 0; trial < 50; ++trial) {
    // Half the trials stay under 64 states, half straddle the boundary.
    const StateId universe = trial % 2 == 0 ? 60 : 90;
    Configuration c(g.num_nodes());
    for (auto& q : c) q = rng.below(universe);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      std::vector<StateId> sensed{c[v]};
      for (const NodeId u : g.neighbors(v)) sensed.push_back(c[u]);
      const Signal expected = Signal::from_states(std::move(sensed));
      EXPECT_EQ(scratch.sense(g, c, v).materialize(), expected);
    }
  }
}

TEST(MakeSignalView, SortsDedupsAndMasks) {
  std::vector<StateId> buf{7, 1, 7, 40, 1};
  const SignalView view = make_signal_view(buf);
  EXPECT_EQ(buf, (std::vector<StateId>{1, 7, 40}));
  ASSERT_TRUE(view.has_mask());
  EXPECT_EQ(view.mask(),
            (std::uint64_t{1} << 1) | (std::uint64_t{1} << 7) |
                (std::uint64_t{1} << 40));

  std::vector<StateId> big{99, 2, 99};
  const SignalView sparse = make_signal_view(big);
  EXPECT_FALSE(sparse.has_mask());
  EXPECT_EQ(big, (std::vector<StateId>{2, 99}));
}

TEST(Signal, FromSortedUniqueEqualsFromStates) {
  EXPECT_EQ(Signal::from_sorted_unique({1, 2, 3}),
            Signal::from_states({3, 2, 1, 2}));
}

}  // namespace
}  // namespace ssau::core
