// Snapshot/persistence/replay subsystem tests.
//
// The headline invariant: run N steps, snapshot, restore into a fresh
// process-equivalent engine, run M more ≡ run N + M straight — checked over
// configurations, time, round stamps, listener streams, and activation
// counts, across AU + MIS + LE × all 8 schedulers × thread counts
// {1,2,4,8} × signal field on/off, including snapshots straddling topology
// churn. Corrupt input (every truncation boundary, every flipped byte,
// version skew, endianness) must always raise util::SnapshotError — never
// UB. Torn checkpoint writes fall back to the previous checkpoint, and a
// recorded command log replays a trajectory bit-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "core/command_log.hpp"
#include "core/engine.hpp"
#include "core/faults.hpp"
#include "core/snapshot.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "le/alg_le.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"
#include "unison/alg_au.hpp"
#include "unison/au_invariants.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

using namespace ssau;
using core::snapshot::restore;
using core::snapshot::restore_graph;
using core::snapshot::save;
using util::SnapshotError;

namespace {

// --- shared helpers ----------------------------------------------------------

/// One observed transition, as a listener sees it.
struct StreamEvent {
  core::NodeId v;
  core::StateId from;
  core::StateId to;
  core::Time t;
  std::vector<core::StateId> sig;

  bool operator==(const StreamEvent&) const = default;
};

core::Engine::TransitionListener capture_into(std::vector<StreamEvent>& out) {
  return [&out](core::NodeId v, core::StateId from, core::StateId to,
                const core::Signal& sig, core::Time t) {
    out.push_back({v, from, to, t,
                   std::vector<core::StateId>(sig.states().begin(),
                                              sig.states().end())});
  };
}

/// Asserts full observable equality of two engines (the restore contract).
void expect_engines_equal(const core::Engine& a, const core::Engine& b) {
  EXPECT_EQ(a.config(), b.config());
  EXPECT_EQ(a.time(), b.time());
  EXPECT_EQ(a.rounds_completed(), b.rounds_completed());
  EXPECT_EQ(a.round_index_now(), b.round_index_now());
  for (core::NodeId v = 0; v < a.graph().num_nodes(); ++v) {
    EXPECT_EQ(a.activation_count(v), b.activation_count(v)) << "node " << v;
  }
  EXPECT_EQ(core::engine_state_hash(a), core::engine_state_hash(b));
}

/// Flips one byte, recomputes the trailing CRC so only the semantic field
/// is corrupt — for targeted header tests (version, endianness).
void refresh_crc(std::vector<std::uint8_t>& bytes) {
  const auto body =
      std::span<const std::uint8_t>(bytes).first(bytes.size() - 4);
  const std::uint32_t crc = util::crc32(body);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

/// A small deterministic engine + snapshot used by the corruption suites.
struct TinyRun {
  graph::Graph g = graph::ring_of_cliques(3, 4);
  unison::AlgAu alg{2};
  std::unique_ptr<sched::Scheduler> sched =
      sched::make_scheduler("permutation", g);
  std::unique_ptr<core::Engine> engine;
  std::vector<std::uint8_t> bytes;

  TinyRun() {
    util::Rng rng(5);
    engine = std::make_unique<core::Engine>(
        g, alg, *sched, core::random_configuration(alg, g.num_nodes(), rng),
        99);
    for (int i = 0; i < 100; ++i) engine->step();
    bytes = save(*engine);
  }
};

// --- binary_io ---------------------------------------------------------------

TEST(BinaryIo, RoundTrip) {
  util::BinaryWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(3.25);
  w.str("snapshot");
  const std::uint8_t raw[3] = {1, 2, 3};
  w.bytes(raw);
  const std::size_t off = w.tell();
  w.u64(0);
  w.patch_u64(off, 42);

  util::BinaryReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFU);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "snapshot");
  const auto got = r.bytes(3);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[2], 3);
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_TRUE(r.done());
}

TEST(BinaryIo, LittleEndianOnTheWire) {
  util::BinaryWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.buffer().size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x04);
  EXPECT_EQ(w.buffer()[3], 0x01);
}

TEST(BinaryIo, TruncationThrows) {
  util::BinaryWriter w;
  w.u32(7);
  util::BinaryReader r(w.buffer());
  EXPECT_THROW(r.u64(), SnapshotError);
  EXPECT_EQ(r.u32(), 7u);  // failed read consumed nothing
  EXPECT_THROW(r.u8(), SnapshotError);
}

TEST(BinaryIo, CorruptStringLengthRejectedBeforeAllocation) {
  util::BinaryWriter w;
  w.u64(std::uint64_t{1} << 60);  // absurd length, 0 payload bytes
  util::BinaryReader r(w.buffer());
  EXPECT_THROW(r.str(), SnapshotError);
}

TEST(BinaryIo, Crc32KnownVector) {
  const std::string check = "123456789";
  EXPECT_EQ(util::crc32(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(check.data()),
                check.size())),
            0xCBF43926U);
}

// --- the headline restore differential --------------------------------------

class SnapshotDifferential : public ::testing::Test {};

TEST(SnapshotDifferential, Matrix) {
  util::Rng graph_rng(17);
  graph::Graph g = graph::random_connected(48, 0.15, graph_rng);
  const int diam = static_cast<int>(graph::diameter(g));

  const unison::AlgAu au(diam);
  const mis::AlgMis mis({.diameter_bound = diam});
  const le::AlgLe le({.diameter_bound = diam});
  const std::vector<std::pair<std::string, const core::Automaton*>> algs = {
      {"alg-au", &au}, {"alg-mis", &mis}, {"alg-le", &le}};

  std::vector<std::string> schedulers = sched::async_scheduler_names();
  schedulers.push_back("synchronous");
  ASSERT_EQ(schedulers.size(), 8u);

  constexpr core::Time kStepsBefore = 205;  // mid permutation/wave cycle
  constexpr core::Time kStepsAfter = 200;

  for (const auto& [alg_name, alg] : algs) {
    for (const std::string& sched_name : schedulers) {
      for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        for (const auto field : {core::SignalFieldMode::kOn,
                                 core::SignalFieldMode::kOff}) {
          SCOPED_TRACE(alg_name + " × " + sched_name + " × t" +
                       std::to_string(threads) + " × field " +
                       (field == core::SignalFieldMode::kOn ? "on" : "off"));
          core::EngineOptions opts;
          opts.thread_count = threads;
          opts.signal_field = field;
          // Let 48-node activation sets reach the sparse sharded kernel.
          opts.sparse_activation_threshold = 8;

          util::Rng rng(1234);
          const auto initial =
              core::random_configuration(*alg, g.num_nodes(), rng);
          auto sched = sched::make_scheduler(sched_name, g);
          core::Engine original(g, *alg, *sched, initial, 777, opts);
          for (core::Time t = 0; t < kStepsBefore; ++t) original.step();

          const auto bytes = save(original);
          graph::Graph restored_graph = restore_graph(bytes);
          auto restored_sched =
              sched::make_scheduler(sched_name, restored_graph);
          auto restored =
              restore(bytes, restored_graph, *alg, *restored_sched);

          expect_engines_equal(original, *restored);

          // The restored engine's future must be bit-identical to the
          // original's — including the listener stream.
          std::vector<StreamEvent> original_stream;
          std::vector<StreamEvent> restored_stream;
          original.set_transition_listener(capture_into(original_stream));
          restored->set_transition_listener(capture_into(restored_stream));
          for (core::Time t = 0; t < kStepsAfter; ++t) {
            original.step();
            restored->step();
          }
          EXPECT_EQ(original_stream, restored_stream);
          expect_engines_equal(original, *restored);
        }
      }
    }
  }
}

TEST(SnapshotDifferential, ChurnStraddle) {
  // Snapshot BETWEEN apply_topology_delta calls: churn before the snapshot
  // (so the serialized graph is the churned one, slack elided) and churn
  // again after the restore (so the restored engine's own churn path runs).
  for (const std::string& sched_name :
       {std::string("uniform-single"), std::string("wave"),
        std::string("permutation")}) {
    SCOPED_TRACE(sched_name);
    util::Rng graph_rng(29);
    graph::Graph g = graph::random_connected(40, 0.12, graph_rng);
    const unison::AlgAu alg(static_cast<int>(graph::diameter(g)) + 4);

    util::Rng rng(3);
    auto sched = sched::make_scheduler(sched_name, g);
    core::Engine original(g, alg, *sched,
                          core::random_configuration(alg, g.num_nodes(), rng),
                          555);
    for (int t = 0; t < 100; ++t) original.step();

    // Deterministic churn rule, computable identically on both graphs.
    const auto make_delta = [](const graph::Graph& graph) {
      graph::TopologyDelta d;
      const auto edges = graph.edges();
      d.remove.push_back(edges[0]);
      d.remove.push_back(edges[edges.size() / 2]);
      for (graph::NodeId u = 0; u < graph.num_nodes() && d.add.size() < 2; ++u) {
        for (graph::NodeId v = u + 2; v < graph.num_nodes() && d.add.size() < 2;
             ++v) {
          if (!graph.has_edge(u, v)) d.add.push_back({u, v});
        }
      }
      return d;
    };
    original.apply_topology_delta(make_delta(original.graph()));
    for (int t = 0; t < 105; ++t) original.step();

    const auto bytes = save(original);
    graph::Graph restored_graph = restore_graph(bytes);
    auto restored_sched = sched::make_scheduler(sched_name, restored_graph);
    auto restored = restore(bytes, restored_graph, alg, *restored_sched);
    expect_engines_equal(original, *restored);

    // Both sides keep churning and running — identically.
    for (int round = 0; round < 3; ++round) {
      const auto d1 = make_delta(original.graph());
      const auto d2 = make_delta(restored->graph());
      ASSERT_EQ(d1.remove, d2.remove);
      ASSERT_EQ(d1.add, d2.add);
      original.apply_topology_delta(d1);
      restored->apply_topology_delta(d2);
      for (int t = 0; t < 80; ++t) {
        original.step();
        restored->step();
      }
      expect_engines_equal(original, *restored);
    }
    EXPECT_EQ(original.graph().num_edges(), restored->graph().num_edges());
    EXPECT_EQ(original.graph().max_degree(), restored->graph().max_degree());
  }
}

TEST(SnapshotDifferential, StaleFieldSurvivesSnapshot) {
  // inject_configuration invalidates a live field; the snapshot must carry
  // the stale marker so the restored engine rebuilds lazily exactly like
  // the original (and a full-activation engine stays stale forever).
  for (const std::string& sched_name :
       {std::string("uniform-single"), std::string("synchronous")}) {
    SCOPED_TRACE(sched_name);
    util::Rng graph_rng(31);
    graph::Graph g = graph::random_connected(32, 0.2, graph_rng);
    const unison::AlgAu alg(static_cast<int>(graph::diameter(g)));
    core::EngineOptions opts;
    opts.signal_field = core::SignalFieldMode::kOn;

    util::Rng rng(9);
    auto sched = sched::make_scheduler(sched_name, g);
    core::Engine original(g, alg, *sched,
                          core::random_configuration(alg, g.num_nodes(), rng),
                          222, opts);
    for (int t = 0; t < 50; ++t) original.step();
    original.inject_configuration(
        core::random_configuration(alg, g.num_nodes(), rng));
    ASSERT_TRUE(original.signal_field_active());
    ASSERT_TRUE(original.signal_field_stale());

    const auto bytes = save(original);
    graph::Graph restored_graph = restore_graph(bytes);
    auto restored_sched = sched::make_scheduler(sched_name, restored_graph);
    auto restored = restore(bytes, restored_graph, alg, *restored_sched);
    EXPECT_TRUE(restored->signal_field_active());
    EXPECT_TRUE(restored->signal_field_stale());
    expect_engines_equal(original, *restored);

    for (int t = 0; t < 120; ++t) {
      original.step();
      restored->step();
    }
    EXPECT_EQ(original.signal_field_stale(), restored->signal_field_stale());
    expect_engines_equal(original, *restored);
  }
}

TEST(SnapshotDifferential, AdaptiveFieldBailMatchesAcrossRestore) {
  // A kAuto mask-kernel field self-disables once patches outweigh senses.
  // Snapshot mid-observation-window: the restored engine must carry the
  // window counters so it bails (or keeps the field) at the SAME future
  // step as the original.
  const graph::Graph g = graph::complete(40);  // avg degree 39 >= 32 floor
  const unison::AlgAu alg(1);
  core::EngineOptions opts;  // kAuto default

  util::Rng rng(13);
  auto sched = sched::make_scheduler("rotating-single", g);
  core::Engine original(g, alg, *sched,
                        core::random_configuration(alg, g.num_nodes(), rng),
                        333, opts);
  ASSERT_TRUE(original.signal_field_active());

  for (int t = 0; t < 3000; ++t) original.step();  // mid-window
  const auto mid = save(original);

  graph::Graph g2 = restore_graph(mid);
  auto sched2 = sched::make_scheduler("rotating-single", g2);
  auto restored = restore(mid, g2, alg, *sched2);
  EXPECT_EQ(original.signal_field_active(), restored->signal_field_active());

  // Run both past the window boundary; the bail decision must coincide.
  for (int t = 0; t < 12000; ++t) {
    original.step();
    restored->step();
  }
  EXPECT_EQ(original.signal_field_active(), restored->signal_field_active());
  expect_engines_equal(original, *restored);

  // Snapshot AFTER a bail: the restored engine must drop the field its own
  // construction routing would otherwise have re-created.
  if (!original.signal_field_active()) {
    const auto late = save(original);
    graph::Graph g3 = restore_graph(late);
    auto sched3 = sched::make_scheduler("rotating-single", g3);
    auto late_restored = restore(late, g3, alg, *sched3);
    EXPECT_FALSE(late_restored->signal_field_active());
    for (int t = 0; t < 500; ++t) {
      original.step();
      late_restored->step();
    }
    expect_engines_equal(original, *late_restored);
  }
}

// --- corrupt input: always SnapshotError, never UB ---------------------------

TEST(SnapshotErrors, TruncationAtEveryByteBoundary) {
  TinyRun run;
  for (std::size_t len = 0; len < run.bytes.size(); ++len) {
    const std::vector<std::uint8_t> truncated(run.bytes.begin(),
                                              run.bytes.begin() +
                                                  static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(core::snapshot::inspect(truncated), SnapshotError)
        << "prefix length " << len;
    graph::Graph g2 = graph::ring_of_cliques(3, 4);
    auto sched2 = sched::make_scheduler("permutation", g2);
    EXPECT_THROW(restore(truncated, g2, run.alg, *sched2), SnapshotError)
        << "prefix length " << len;
  }
}

TEST(SnapshotErrors, FlippedByteAnywhereIsDetected) {
  TinyRun run;
  for (std::size_t i = 0; i < run.bytes.size(); ++i) {
    auto corrupt = run.bytes;
    corrupt[i] ^= 0x5A;
    EXPECT_THROW(core::snapshot::inspect(corrupt), SnapshotError)
        << "byte " << i;
  }
}

TEST(SnapshotErrors, VersionSkew) {
  TinyRun run;
  auto bytes = run.bytes;
  bytes[8] = static_cast<std::uint8_t>(core::snapshot::kSnapshotVersion + 1);
  refresh_crc(bytes);
  try {
    (void)core::snapshot::inspect(bytes);
    FAIL() << "version skew not detected";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version skew"), std::string::npos);
  }
}

TEST(SnapshotErrors, EndiannessGuard) {
  TinyRun run;
  auto bytes = run.bytes;
  // A big-endian writer would store the sentinel bytes reversed.
  bytes[12] = 0x01;
  bytes[13] = 0x02;
  bytes[14] = 0x03;
  bytes[15] = 0x04;
  refresh_crc(bytes);
  try {
    (void)core::snapshot::inspect(bytes);
    FAIL() << "endianness mismatch not detected";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("endianness"), std::string::npos);
  }
}

TEST(SnapshotErrors, MismatchedCollaboratorsRejected) {
  TinyRun run;

  // Wrong automaton (|Q| differs).
  {
    const unison::AlgAu other(4);
    graph::Graph g2 = restore_graph(run.bytes);
    auto sched2 = sched::make_scheduler("permutation", g2);
    EXPECT_THROW(restore(run.bytes, g2, other, *sched2), SnapshotError);
  }
  // Wrong scheduler name.
  {
    graph::Graph g2 = restore_graph(run.bytes);
    auto sched2 = sched::make_scheduler("uniform-single", g2);
    EXPECT_THROW(restore(run.bytes, g2, run.alg, *sched2), SnapshotError);
  }
  // Wrong graph (same node count, different edges).
  {
    graph::Graph g2 = graph::complete(12);
    auto sched2 = sched::make_scheduler("permutation", g2);
    EXPECT_THROW(restore(run.bytes, g2, run.alg, *sched2), SnapshotError);
  }
}

// --- crash-consistent checkpointing ------------------------------------------

TEST(Checkpoint, TornWriteFallsBackToPrevious) {
  TinyRun run;
  const std::string path = "test_snapshot_torn.snap";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");

  // Two checkpoints: the second rotates the first to .prev.
  core::snapshot::write_checkpoint(*run.engine, path);
  run.engine->step();
  core::snapshot::write_checkpoint(*run.engine, path);
  ASSERT_TRUE(std::filesystem::exists(path + ".prev"));
  const auto full = core::snapshot::read_file(path);
  const auto prev = core::snapshot::read_file(path + ".prev");

  // Tear the primary at every byte boundary: read_checkpoint must always
  // come back with the intact previous checkpoint.
  for (std::size_t len = 0; len < full.size(); len += 7) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(full.data()),
             static_cast<std::streamsize>(len));
    os.close();
    const auto recovered = core::snapshot::read_checkpoint(path);
    EXPECT_EQ(recovered, prev) << "torn at " << len;
  }

  // Corrupt BOTH: no valid checkpoint left — a clean typed error.
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write("garbage", 7);
    os.close();
    std::ofstream osp(path + ".prev", std::ios::binary | std::ios::trunc);
    osp.write("garbage", 7);
    osp.close();
    EXPECT_THROW(core::snapshot::read_checkpoint(path), SnapshotError);
  }
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

TEST(Checkpoint, FaultCampaignWritesAndResumes) {
  const std::string path = "test_snapshot_campaign.snap";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");

  util::Rng graph_rng(41);
  graph::Graph g = graph::random_connected(24, 0.2, graph_rng);
  const unison::AlgAu alg(static_cast<int>(graph::diameter(g)));
  auto sched = sched::make_scheduler("uniform-single", g);
  util::Rng rng(6);
  core::Engine engine(g, alg, *sched,
                      core::random_configuration(alg, g.num_nodes(), rng),
                      888);

  core::FaultCampaignOptions opts;
  opts.bursts = 4;
  opts.nodes_per_burst = 3;
  opts.settle_rounds = 4;
  opts.checkpoint_every = 2;
  opts.checkpoint_path = path;
  const auto res = core::run_fault_campaign(
      engine,
      [&](const core::Configuration& c) {
        return unison::graph_good(alg.turns(), engine.graph(), c);
      },
      opts, rng);
  // Baseline + after bursts 2 and 4.
  EXPECT_EQ(res.checkpoints_written, 3u);
  ASSERT_TRUE(std::filesystem::exists(path));

  const auto bytes = core::snapshot::read_checkpoint(path);
  graph::Graph g2 = restore_graph(bytes);
  auto sched2 = sched::make_scheduler("uniform-single", g2);
  auto resumed = restore(bytes, g2, alg, *sched2);
  expect_engines_equal(engine, *resumed);  // final checkpoint == final state
  for (int t = 0; t < 200; ++t) {
    engine.step();
    resumed->step();
  }
  expect_engines_equal(engine, *resumed);

  // checkpoint_every without a path is a usage error, caught up front.
  core::FaultCampaignOptions bad;
  bad.checkpoint_every = 1;
  EXPECT_THROW(core::run_fault_campaign(
                   engine, [](const core::Configuration&) { return true; },
                   bad, rng),
               std::invalid_argument);

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");
}

// --- golden fixtures: old wire versions stay loadable ------------------------

/// The fixture-vs-live differential both golden tests share: the fixture is
/// a snapshot of the TinyRun engine (ring_of_cliques(3,4), AlgAu(2),
/// permutation daemon, seed 99, 100 steps); it must restore AND continue
/// exactly like a straight run of the same deterministic engine — across
/// compilers, library versions, and wire-format revisions.
void expect_golden_loads(const std::string& path) {
  TinyRun run;
  const auto bytes = core::snapshot::read_file(path);
  const auto info = core::snapshot::inspect(bytes);
  EXPECT_EQ(info.num_nodes, 12u);
  EXPECT_EQ(info.scheduler, "permutation");
  EXPECT_EQ(info.seed, 99u);
  EXPECT_EQ(info.time, 100u);

  graph::Graph g2 = restore_graph(bytes);
  auto sched2 = sched::make_scheduler("permutation", g2);
  auto restored = restore(bytes, g2, run.alg, *sched2);
  expect_engines_equal(*run.engine, *restored);
  for (int t = 0; t < 50; ++t) {
    run.engine->step();
    restored->step();
  }
  expect_engines_equal(*run.engine, *restored);
}

TEST(Golden, V1FixtureStillLoads) {
  // FROZEN: a v1-era writer produced this file (per-node rng block present);
  // no current writer can regenerate it, so it is read-only forever. The v1
  // reader path (validate + skip the rng block) keeps it loading.
  expect_golden_loads(std::string(SSAU_TEST_DATA_DIR) +
                      "/golden_engine_v1.snap");
}

TEST(Golden, V2FixtureStillLoads) {
  // FROZEN: a v2-era writer produced this file (no reorder options byte, no
  // graph relabelling block); no current writer can regenerate it. The
  // versioned readers default those fields (reorder = kOff, identity
  // layout), which is exactly what a v2 engine was.
  expect_golden_loads(std::string(SSAU_TEST_DATA_DIR) +
                      "/golden_engine_v2.snap");
}

TEST(Golden, V3FixtureLoads) {
  // The current-format fixture. Regenerate ONLY on a deliberate format break
  // (with a version bump and a new frozen fixture for the old version) via
  //   SSAU_REGEN_GOLDEN=1 ./test_snapshot --gtest_filter=Golden.*
  const std::string path =
      std::string(SSAU_TEST_DATA_DIR) + "/golden_engine_v3.snap";
  if (std::getenv("SSAU_REGEN_GOLDEN") != nullptr) {
    TinyRun run;
    core::snapshot::write_file(run.bytes, path);
    GTEST_SKIP() << "regenerated " << path;
  }
  expect_golden_loads(path);
}

TEST(Golden, V3ReorderedFixtureLoads) {
  // v3's new wire content — a graph relabelling — exercised end to end: the
  // fixture engine ran over a BFS-reordered layout, so the file carries the
  // permutation and the restored graph must come back reordered(). Same
  // regeneration protocol as the main v3 fixture.
  const std::string path =
      std::string(SSAU_TEST_DATA_DIR) + "/golden_engine_v3_reordered.snap";
  const auto make_live = [] {
    struct Run {
      graph::Graph g = graph::ring_of_cliques(3, 4);
      unison::AlgAu alg{2};
      std::unique_ptr<sched::Scheduler> sched =
          sched::make_scheduler("permutation", g);
      std::unique_ptr<core::Engine> engine;
    };
    auto run = std::make_unique<Run>();
    util::Rng rng(5);
    run->engine = std::make_unique<core::Engine>(
        run->g, run->alg, *run->sched,
        core::random_configuration(run->alg, run->g.num_nodes(), rng), 99,
        core::EngineOptions{.reorder = core::ReorderMode::kBfs});
    for (int i = 0; i < 100; ++i) run->engine->step();
    return run;
  };
  if (std::getenv("SSAU_REGEN_GOLDEN") != nullptr) {
    auto live = make_live();
    core::snapshot::write_file(save(*live->engine), path);
    GTEST_SKIP() << "regenerated " << path;
  }
  auto live = make_live();
  ASSERT_TRUE(live->g.reordered());
  const auto bytes = core::snapshot::read_file(path);
  graph::Graph g2 = restore_graph(bytes);
  ASSERT_TRUE(g2.reordered());
  EXPECT_TRUE(std::equal(live->g.permutation().begin(),
                         live->g.permutation().end(),
                         g2.permutation().begin(), g2.permutation().end()));
  auto sched2 = sched::make_scheduler("permutation", g2);
  auto restored = restore(bytes, g2, live->alg, *sched2);
  expect_engines_equal(*live->engine, *restored);
  for (int t = 0; t < 50; ++t) {
    live->engine->step();
    restored->step();
  }
  expect_engines_equal(*live->engine, *restored);
}

// --- scheduler state blobs ---------------------------------------------------

TEST(SchedulerState, PermutationMidCycleRoundTrip) {
  const graph::Graph g = graph::complete(16);
  sched::PermutationScheduler a(16);
  util::Rng rng(77);
  std::vector<core::NodeId> out;
  for (core::Time t = 0; t < 20; ++t) a.activations(t, out, rng);  // mid-cycle

  util::BinaryWriter w;
  a.save_state(w);
  sched::PermutationScheduler b(16);
  util::BinaryReader r(w.buffer());
  b.load_state(r);
  EXPECT_TRUE(r.done());

  // Identical remaining schedule (same rng stream fed to both from here).
  util::Rng rng_a = rng;
  util::Rng rng_b = rng;
  std::vector<core::NodeId> out_b;
  for (core::Time t = 20; t < 40; ++t) {
    a.activations(t, out, rng_a);
    b.activations(t, out_b, rng_b);
    EXPECT_EQ(out, out_b) << "t=" << t;
  }
}

TEST(SchedulerState, PermutationRejectsCorruptBlobs) {
  sched::PermutationScheduler s(8);
  {
    util::BinaryWriter w;
    w.u32(9);  // wrong n
    for (core::NodeId v = 0; v < 9; ++v) w.u32(v);
    util::BinaryReader r(w.buffer());
    EXPECT_THROW(s.load_state(r), SnapshotError);
  }
  {
    util::BinaryWriter w;
    w.u32(8);
    for (core::NodeId v = 0; v < 7; ++v) w.u32(v);
    w.u32(99);  // out of range
    util::BinaryReader r(w.buffer());
    EXPECT_THROW(s.load_state(r), SnapshotError);
  }
}

TEST(SchedulerState, WaveLayeringRoundTrip) {
  util::Rng graph_rng(55);
  const graph::Graph g = graph::random_connected(30, 0.15, graph_rng);
  sched::WaveScheduler a(g);
  util::BinaryWriter w;
  a.save_state(w);

  // Load into a wave scheduler built over a DIFFERENT graph: the blob wins
  // (restore loads the snapshotted layering, not the constructor's).
  const graph::Graph other = graph::complete(30);
  sched::WaveScheduler b(other);
  util::BinaryReader r(w.buffer());
  b.load_state(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(a.max_activation_hint(), b.max_activation_hint());

  util::Rng rng(1);
  std::vector<core::NodeId> out_a;
  std::vector<core::NodeId> out_b;
  for (core::Time t = 0; t < 25; ++t) {
    a.activations(t, out_a, rng);
    b.activations(t, out_b, rng);
    EXPECT_EQ(out_a, out_b) << "t=" << t;
  }
}

TEST(SchedulerState, WaveRejectsCorruptBlobs) {
  const graph::Graph g = graph::path(4);
  sched::WaveScheduler s(g);
  const auto blob_of = [](std::vector<std::vector<core::NodeId>> layers) {
    util::BinaryWriter w;
    w.u64(layers.size());
    for (const auto& layer : layers) {
      w.u64(layer.size());
      for (const core::NodeId v : layer) w.u32(v);
    }
    return w.take();
  };
  {
    // Node id >= n: the engine would index config_/pending_/neighbors() out
    // of bounds with it.
    const auto bytes = blob_of({{0}, {1}, {2}, {99}});
    util::BinaryReader r(bytes);
    EXPECT_THROW(s.load_state(r), SnapshotError);
  }
  {
    // Duplicate across layers.
    const auto bytes = blob_of({{0, 1}, {1, 2}});
    util::BinaryReader r(bytes);
    EXPECT_THROW(s.load_state(r), SnapshotError);
  }
  {
    // Missing node (layering must partition the node set).
    const auto bytes = blob_of({{0}, {1, 2}});
    util::BinaryReader r(bytes);
    EXPECT_THROW(s.load_state(r), SnapshotError);
  }
  {
    // Zero layers.
    const auto bytes = blob_of({});
    util::BinaryReader r(bytes);
    EXPECT_THROW(s.load_state(r), SnapshotError);
  }
  // A rejected blob must not have clobbered the layering: the schedule
  // still partitions [0, 4) one node per BFS layer of the path.
  util::Rng rng(1);
  std::vector<core::NodeId> out;
  std::vector<bool> seen(4, false);
  for (core::Time t = 0; t < 4; ++t) {
    s.activations(t, out, rng);
    for (const core::NodeId v : out) {
      ASSERT_LT(v, 4u);
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Restore, FailedRestoreLeavesSchedulerIntact) {
  // Corrupt the tail of a valid snapshot (engine-state section) and re-seal
  // the envelope: restore throws AFTER reaching the scheduler blob, yet must
  // leave the caller's scheduler producing its original schedule.
  TinyRun run;  // 100 steps → the snapshotted permutation is mid-cycle
  auto bytes = run.bytes;

  // Drop the final payload byte and re-frame (length at offset 16, CRC
  // trailing): the envelope validates, every section up to and including
  // the scheduler blob parses, and Engine::load_state hits truncation.
  bytes.resize(bytes.size() - 5);  // old CRC (4) + last payload byte
  const std::uint64_t new_len = bytes.size() - 24;
  for (int i = 0; i < 8; ++i) {
    bytes[16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(new_len >> (8 * i));
  }
  const std::uint32_t crc = util::crc32(bytes);
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }

  graph::Graph g2 = restore_graph(bytes);
  auto sched2 = sched::make_scheduler("permutation", g2);
  // Reference: a twin scheduler that never sees the corrupt restore.
  auto sched_ref = sched::make_scheduler("permutation", g2);

  EXPECT_THROW(restore(bytes, g2, run.alg, *sched2), SnapshotError);

  // Compare mid-cycle (pos 1..n-1 never reshuffles, so the snapshot's
  // shuffled order would show through if the failed restore left it in).
  util::Rng rng;
  std::vector<core::NodeId> out_a;
  std::vector<core::NodeId> out_b;
  for (core::Time t = 1; t < 12; ++t) {
    sched2->activations(t, out_a, rng);
    sched_ref->activations(t, out_b, rng);
    EXPECT_EQ(out_a, out_b) << "t=" << t;
  }
}

// --- command log -------------------------------------------------------------

TEST(CommandLog, RoundTripAllRecordTypes) {
  const std::string path = "test_snapshot_roundtrip.cmdlog";
  core::ReplayHeader header;
  header.automaton = "alg-au:2";
  header.scheduler = "permutation";
  header.subset_p = 0.25;
  header.burst = 7;
  header.seed = 4242;
  header.options.thread_count = 4;
  header.options.signal_field = core::SignalFieldMode::kOn;
  {
    core::CommandLogWriter log(path, header);
    log.record_steps(10);
    log.record_steps(5);  // coalesces with the previous 10
    log.record_inject_state(3, 1);
    log.record_steps(2);
    graph::TopologyDelta delta;
    delta.remove.push_back({0, 1});
    delta.add.push_back({2, 5});
    log.record_topology_delta(delta);
    log.record_inject_configuration(core::Configuration{1, 0, 2, 1});
    log.flush();
  }

  const auto log = core::read_command_log(path);
  EXPECT_FALSE(log.truncated_tail);
  EXPECT_EQ(log.header.automaton, "alg-au:2");
  EXPECT_EQ(log.header.scheduler, "permutation");
  EXPECT_EQ(log.header.subset_p, 0.25);
  EXPECT_EQ(log.header.burst, 7u);
  EXPECT_EQ(log.header.seed, 4242u);
  EXPECT_EQ(log.header.options.thread_count, 4u);
  ASSERT_EQ(log.commands.size(), 5u);
  EXPECT_EQ(log.commands[0].type, core::CommandType::kSteps);
  EXPECT_EQ(log.commands[0].count, 15u);
  EXPECT_EQ(log.commands[1].type, core::CommandType::kInjectState);
  EXPECT_EQ(log.commands[1].node, 3u);
  EXPECT_EQ(log.commands[2].count, 2u);
  EXPECT_EQ(log.commands[3].type, core::CommandType::kTopologyDelta);
  EXPECT_EQ(log.commands[3].delta.remove.size(), 1u);
  EXPECT_EQ(log.commands[4].type, core::CommandType::kInjectConfiguration);
  EXPECT_EQ(log.commands[4].config,
            (core::Configuration{1, 0, 2, 1}));
  std::filesystem::remove(path);
}

TEST(CommandLog, TornTailIsRecoverableCorruptionIsNot) {
  const std::string path = "test_snapshot_torn.cmdlog";
  core::ReplayHeader header;
  header.automaton = "alg-au:2";
  header.scheduler = "uniform-single";
  {
    core::CommandLogWriter log(path, header);
    log.record_steps(100);
    log.record_inject_state(1, 1);
    log.flush();
  }
  std::ifstream is(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  is.close();

  // Shear the final record anywhere: the prefix replays, the tail flag is
  // set. (Stop before eating into the previous complete record's frame.)
  const std::size_t last_record_size = 8 + 1 + 4 + 8;  // frame + body
  for (std::size_t cut = 1; cut < last_record_size; ++cut) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size() - cut));
    os.close();
    const auto log = core::read_command_log(path);
    EXPECT_TRUE(log.truncated_tail) << "cut " << cut;
    ASSERT_EQ(log.commands.size(), 1u) << "cut " << cut;
    EXPECT_EQ(log.commands[0].count, 100u);
  }

  // A COMPLETE record with flipped bytes is corruption — typed error.
  {
    auto corrupt = bytes;
    corrupt[corrupt.size() - 2] ^= 0x40;  // inside the last record's body
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    os.close();
    EXPECT_THROW(core::read_command_log(path), SnapshotError);
  }
  std::filesystem::remove(path);
}

TEST(CommandLog, RecordedTrajectoryReplaysBitIdentically) {
  const std::string snap_path = "test_snapshot_replay.snap";
  const std::string log_path = "test_snapshot_replay.cmdlog";

  util::Rng graph_rng(61);
  graph::Graph g = graph::random_connected(28, 0.18, graph_rng);
  const unison::AlgAu alg(static_cast<int>(graph::diameter(g)) + 2);
  auto sched = sched::make_scheduler("uniform-single", g);
  util::Rng rng(15);
  core::Engine engine(g, alg, *sched,
                      core::random_configuration(alg, g.num_nodes(), rng),
                      321);
  for (int t = 0; t < 60; ++t) engine.step();

  // Checkpoint, then record everything that happens afterwards.
  core::snapshot::write_file(save(engine), snap_path);
  core::ReplayHeader header;
  header.automaton = "alg-au:" + std::to_string(
      static_cast<int>(graph::diameter(g)) + 2);
  header.scheduler = "uniform-single";
  header.seed = engine.seed();
  header.options = engine.options();
  std::uint64_t final_hash = 0;
  {
    core::CommandLogWriter log(log_path, header);
    for (int t = 0; t < 40; ++t) {
      engine.step();
      log.record_steps(1);
    }
    log.record_expect_hash(engine);
    engine.inject_state(4, 2);
    log.record_inject_state(4, 2);
    graph::TopologyDelta delta;
    delta.remove.push_back(engine.graph().edges()[0]);
    const auto applied = engine.apply_topology_delta(delta);
    log.record_topology_delta(applied);
    for (int t = 0; t < 75; ++t) {
      engine.step();
      log.record_steps(1);
    }
    log.record_expect_hash(engine);
    final_hash = core::engine_state_hash(engine);
  }

  // Fresh process equivalent: restore + replay must converge on the same
  // trajectory digest with zero hash mismatches.
  const auto bytes = core::snapshot::read_file(snap_path);
  graph::Graph g2 = restore_graph(bytes);
  auto sched2 = sched::make_scheduler("uniform-single", g2);
  auto restored = restore(bytes, g2, alg, *sched2);
  const auto log = core::read_command_log(log_path);
  const auto result = core::replay_commands(*restored, log.commands);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.hash_checks, 2u);
  EXPECT_EQ(result.steps, 115u);
  EXPECT_EQ(core::engine_state_hash(*restored), final_hash);
  expect_engines_equal(engine, *restored);

  std::filesystem::remove(snap_path);
  std::filesystem::remove(log_path);
}

// --- the edges() lazy-cache tripwire -----------------------------------------

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(EdgesGuardDeathTest, DirtyCacheRebuildAssertsWhileForbidden) {
  graph::Graph g(4, {{0, 1}, {1, 2}});
  g.add_edge(2, 3);  // dirties the lazy edges() cache
  g.debug_forbid_lazy_edges(true);
  EXPECT_DEATH((void)g.edges(), "edges");
  g.debug_forbid_lazy_edges(false);
  EXPECT_EQ(g.edges().size(), 3u);  // rebuild allowed again
}
#endif

TEST(EdgesGuard, CleanCacheIsAlwaysReadable) {
  graph::Graph g(4, {{0, 1}, {1, 2}});
  g.debug_forbid_lazy_edges(true);
  EXPECT_EQ(g.edges().size(), 2u);  // cache fresh from construction: fine
  g.debug_forbid_lazy_edges(false);
}

TEST(EdgesGuard, SaveNeverTouchesDirtyEdgesCache) {
  // Snapshotting right after churn (edges() cache dirty) must not trip the
  // serializer's own tripwire — it walks the CSR slots.
  graph::Graph g = graph::ring_of_cliques(3, 4);
  const unison::AlgAu alg(3);
  auto sched = sched::make_scheduler("uniform-single", g);
  util::Rng rng(8);
  core::Engine engine(g, alg, *sched,
                      core::random_configuration(alg, g.num_nodes(), rng), 44);
  graph::TopologyDelta delta;
  delta.add.push_back({0, 6});
  engine.apply_topology_delta(delta);  // cache now dirty
  const auto bytes = save(engine);     // must not rebuild edges()
  const graph::Graph g2 = restore_graph(bytes);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
}

}  // namespace
