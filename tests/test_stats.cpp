// Unit tests for util::stats: summaries, quantiles, and growth fits.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace ssau::util {
namespace {

TEST(Summarize, EmptyInputIsZeroed) {
  const Summary s = summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> xs{4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.p50, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, UnsortedInputHandled) {
  const std::vector<double> xs{5, 1, 4, 2, 3};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
}

TEST(Summarize, IntegerOverload) {
  const std::vector<std::uint64_t> xs{10, 20, 30};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.95), 3.85);
}

TEST(PowerFit, RecoversExactPowerLaw) {
  // y = 2 x^3
  std::vector<double> x, y;
  for (double v = 1; v <= 32; v *= 2) {
    x.push_back(v);
    y.push_back(2.0 * v * v * v);
  }
  const PowerFit fit = power_fit(x, y);
  EXPECT_NEAR(fit.exponent, 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficient, 2.0, 1e-9);
}

TEST(PowerFit, ToleratesNoise) {
  Rng rng(99);
  std::vector<double> x, y;
  for (double v = 2; v <= 64; v *= 2) {
    x.push_back(v);
    y.push_back(5.0 * v * v * (0.9 + 0.2 * rng.uniform01()));
  }
  const PowerFit fit = power_fit(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 0.15);
}

TEST(PowerFit, DegenerateInputsYieldZero) {
  const std::vector<double> x{1.0};
  const std::vector<double> y{1.0};
  EXPECT_EQ(power_fit(x, y).exponent, 0.0);
  const std::vector<double> bad_x{-1.0, 0.0};
  const std::vector<double> bad_y{1.0, 2.0};
  EXPECT_EQ(power_fit(bad_x, bad_y).exponent, 0.0);
}

TEST(LogFit, RecoversLogarithmicGrowth) {
  // y = 7 + 3 log2(x)
  std::vector<double> x, y;
  for (double v = 1; v <= 1024; v *= 2) {
    x.push_back(v);
    y.push_back(7.0 + 3.0 * std::log2(v));
  }
  const LogFit fit = log_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
}

TEST(ToString, MentionsHeadlineNumbers) {
  const std::vector<double> xs{1, 2, 3};
  const std::string s = to_string(summarize(xs));
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("mean="), std::string::npos);
}

}  // namespace
}  // namespace ssau::util
