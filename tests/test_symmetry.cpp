// Randomized-symmetry property tests for the competition mechanisms.
//
// The SA model is anonymous: on a vertex-transitive graph, symmetry can only
// be broken by coin tosses, so every node must win with equal probability.
// These tests estimate the winner distributions of Compete (AlgMIS) and
// Elect (AlgLE) over many seeded runs and check near-uniformity — the
// empirical footprint of Compete's property (1),
// P(∧_{w∈W} Z(u) > Z(w)) >= Ω(1/(|W|+1)).
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "le/alg_le.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"

namespace ssau {
namespace {

TEST(Symmetry, MisWinnerUniformOnClique) {
  // complete(4): the MIS is a single node; count who wins across seeds.
  const core::NodeId n = 4;
  const graph::Graph g = graph::complete(n);
  const mis::AlgMis alg({.diameter_bound = 1});
  std::vector<int> wins(n, 0);
  const int trials = 160;
  for (int trial = 0; trial < trials; ++trial) {
    sched::SynchronousScheduler sched(n);
    core::Engine engine(
        g, alg, sched, core::uniform_configuration(n, alg.initial_state()),
        10007ULL * (trial + 1));
    const auto outcome = engine.run_until(
        [&](const core::Configuration& c) {
          return mis::mis_legitimate(alg, g, c);
        },
        100000);
    ASSERT_TRUE(outcome.reached);
    for (core::NodeId v = 0; v < n; ++v) {
      if (alg.output(engine.state_of(v)) == 1) ++wins[v];
    }
  }
  // Uniform expectation 40 wins each; allow generous sampling slack.
  for (core::NodeId v = 0; v < n; ++v) {
    EXPECT_GT(wins[v], trials / 10) << "node " << v << " starved";
    EXPECT_LT(wins[v], trials / 2) << "node " << v << " dominates";
  }
}

TEST(Symmetry, LeaderUniformOnClique) {
  const core::NodeId n = 4;
  const graph::Graph g = graph::complete(n);
  const le::AlgLe alg({.diameter_bound = 1});
  std::vector<int> wins(n, 0);
  const int trials = 120;
  for (int trial = 0; trial < trials; ++trial) {
    sched::SynchronousScheduler sched(n);
    core::Engine engine(
        g, alg, sched, core::uniform_configuration(n, alg.initial_state()),
        20011ULL * (trial + 1));
    const auto outcome = engine.run_until(
        [&](const core::Configuration& c) {
          return le::le_legitimate(alg, g, c);
        },
        100000);
    ASSERT_TRUE(outcome.reached);
    for (core::NodeId v = 0; v < n; ++v) {
      if (alg.output(engine.state_of(v)) == 1) ++wins[v];
    }
  }
  for (core::NodeId v = 0; v < n; ++v) {
    EXPECT_GT(wins[v], trials / 10) << "node " << v << " never leads";
    EXPECT_LT(wins[v], trials / 2) << "node " << v << " always leads";
  }
}

TEST(Symmetry, MisOnCycleSelectsBothParitiesOverSeeds) {
  // cycle(6) has exactly two maximum independent sets ({0,2,4} and {1,3,5})
  // plus several 2-element maximal ones; anonymity means the even/odd
  // 3-element outcomes appear with similar frequency.
  const graph::Graph g = graph::cycle(6);
  const mis::AlgMis alg({.diameter_bound = 3});
  int even3 = 0, odd3 = 0, size2 = 0;
  const int trials = 120;
  for (int trial = 0; trial < trials; ++trial) {
    sched::SynchronousScheduler sched(6);
    core::Engine engine(
        g, alg, sched, core::uniform_configuration(6, alg.initial_state()),
        30013ULL * (trial + 1));
    const auto outcome = engine.run_until(
        [&](const core::Configuration& c) {
          return mis::mis_legitimate(alg, g, c);
        },
        100000);
    ASSERT_TRUE(outcome.reached);
    std::vector<core::NodeId> in;
    for (core::NodeId v = 0; v < 6; ++v) {
      if (alg.output(engine.state_of(v)) == 1) in.push_back(v);
    }
    if (in.size() == 3) {
      (in[0] % 2 == 0 ? even3 : odd3) += 1;
    } else {
      ASSERT_EQ(in.size(), 2u);  // the only other maximal sizes on C6
      ++size2;
    }
  }
  // Both 3-parities occur; neither dominates 20:1.
  EXPECT_GT(even3, 2);
  EXPECT_GT(odd3, 2);
  EXPECT_EQ(even3 + odd3 + size2, trials);
}

}  // namespace
}  // namespace ssau
