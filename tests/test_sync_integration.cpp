// Integration tests for Corollary 1.2: synchronous self-stabilizing
// algorithms transformed by the synchronizer stabilize under fully
// asynchronous schedulers, and deterministic Π runs reproduce the native
// synchronous outcome exactly.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "le/alg_le.hpp"
#include "sched/scheduler.hpp"
#include "sync/simple_sync_algs.hpp"
#include "sync/synchronizer.hpp"

namespace ssau::sync {
namespace {

class SyncFidelity : public ::testing::TestWithParam<std::string> {};

TEST_P(SyncFidelity, MinPropagationReachesTheTrueMinimumAsync) {
  // Deterministic Π: the asynchronous simulated run must converge to the
  // exact same fixed point as the native synchronous run (the global min).
  const graph::Graph g = graph::grid(3, 3);
  const int diam = static_cast<int>(graph::diameter(g));
  MinPropagation pi(32);
  Synchronizer s(pi, diam);

  util::Rng rng(5);
  core::Configuration init(9);
  core::StateId true_min = 31;
  for (auto& q : init) {
    const core::StateId v = rng.below(32);
    true_min = std::min(true_min, v);
    q = s.initial_state(v);
  }
  auto sched = sched::make_scheduler(GetParam(), g);
  core::Engine engine(g, s, *sched, init, 23);
  const auto outcome = engine.run_until(
      [&](const core::Configuration& c) {
        for (const core::StateId q : c) {
          if (s.decode(q).current != true_min) return false;
        }
        return true;
      },
      200000);
  ASSERT_TRUE(outcome.reached) << GetParam();
  // Fixed point: stays at the minimum forever.
  engine.run_rounds(50);
  for (core::NodeId v = 0; v < 9; ++v) {
    EXPECT_EQ(s.decode(engine.state_of(v)).current, true_min);
  }
}

TEST_P(SyncFidelity, OrFloodSaturatesAsync) {
  const graph::Graph g = graph::ring_of_cliques(3, 3);
  const int diam = static_cast<int>(graph::diameter(g));
  OrFlood pi;
  Synchronizer s(pi, diam);
  core::Configuration init(g.num_nodes(), s.initial_state(0));
  init[0] = s.initial_state(1);
  auto sched = sched::make_scheduler(GetParam(), g);
  core::Engine engine(g, s, *sched, init, 31);
  const auto outcome = engine.run_until(
      [&](const core::Configuration& c) {
        for (const core::StateId q : c) {
          if (s.decode(q).current != 1) return false;
        }
        return true;
      },
      200000);
  EXPECT_TRUE(outcome.reached) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SyncFidelity,
                         ::testing::Values("uniform-single", "random-subset",
                                           "rotating-single", "laggard",
                                           "wave"));

TEST(SyncIntegration, SelfStabilizesFromGarbageProductStates) {
  // Random product states: garbage turns AND garbage Π coordinates. AlgAU
  // stabilizes first; then Π (min-propagation) re-stabilizes on top.
  const graph::Graph g = graph::cycle(7);
  const int diam = static_cast<int>(graph::diameter(g));
  MinPropagation pi(16);
  Synchronizer s(pi, diam);
  util::Rng rng(77);
  auto sched = sched::make_scheduler("uniform-single", g);
  core::Engine engine(g, s, *sched,
                      core::random_configuration(s, 7, rng), 77);
  // Converge: eventually all current-Π coordinates equal and stable.
  const auto outcome = engine.run_until(
      [&](const core::Configuration& c) {
        const core::StateId first = s.decode(c[0]).current;
        for (const core::StateId q : c) {
          if (s.decode(q).current != first) return false;
        }
        return true;
      },
      300000);
  ASSERT_TRUE(outcome.reached);
  // min-propagation's agreement value is a fixed point, so it persists.
  const core::StateId fixed = s.decode(engine.state_of(0)).current;
  engine.run_rounds(60);
  for (core::NodeId v = 0; v < 7; ++v) {
    EXPECT_EQ(s.decode(engine.state_of(v)).current, fixed);
  }
}

TEST(SyncIntegration, SynchronizedLeaderElectionEndToEnd) {
  // The headline composition of the paper: AlgLE (synchronous, Thm 1.3)
  // + AlgAU synchronizer (Cor 1.2) = asynchronous self-stabilizing LE.
  const graph::Graph g = graph::complete(4);
  const le::AlgLe pi({.diameter_bound = 1});
  Synchronizer s(pi, 1);
  util::Rng rng(13);
  auto sched = sched::make_scheduler("uniform-single", g);
  core::Engine engine(g, s, *sched, core::random_configuration(s, 4, rng), 13);

  auto exactly_one_leader = [&](const core::Engine& e) {
    std::size_t leaders = 0;
    for (core::NodeId v = 0; v < 4; ++v) {
      const auto q = e.state_of(v);
      if (!s.is_output(q)) return false;
      leaders += s.output(q) == 1 ? 1 : 0;
    }
    return leaders == 1;
  };
  const auto result =
      analysis::measure_output_stabilization(engine, exactly_one_leader,
                                             60000);
  EXPECT_TRUE(result.ever_stable)
      << "async-composed LE failed to stabilize (last bad round "
      << result.last_bad_round << " of " << result.horizon_rounds << ")";
}

}  // namespace
}  // namespace ssau::sync
