// Unit tests for the §4 synchronizer: product-state codec, state-space size
// (Cor 1.2's O(D · |Q|^2)), output projection, and pulse-gated simulation.
#include "sync/synchronizer.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "sched/scheduler.hpp"
#include "sync/simple_sync_algs.hpp"
#include "unison/au_monitor.hpp"

namespace ssau::sync {
namespace {

TEST(Synchronizer, ProductCodecRoundTrips) {
  MinPropagation pi(7);
  Synchronizer s(pi, 2);
  for (core::StateId cur = 0; cur < 7; ++cur) {
    for (core::StateId prev = 0; prev < 7; prev += 2) {
      for (core::StateId turn = 0; turn < s.unison().state_count();
           turn += 5) {
        const auto id = s.encode({cur, prev, turn});
        const auto d = s.decode(id);
        EXPECT_EQ(d.current, cur);
        EXPECT_EQ(d.previous, prev);
        EXPECT_EQ(d.turn, turn);
      }
    }
  }
}

TEST(Synchronizer, StateSpaceIsQSquaredTimesTurns) {
  MinPropagation pi(5);
  for (int d = 1; d <= 4; ++d) {
    Synchronizer s(pi, d);
    EXPECT_EQ(s.state_count(),
              25u * static_cast<core::StateId>(12 * d + 6));
  }
}

TEST(Synchronizer, OutputProjectsFirstCoordinate) {
  MinPropagation pi(5);
  Synchronizer s(pi, 1);
  const auto able = s.unison().turns().able_id(3);
  const auto faulty = s.unison().turns().faulty_id(3);
  EXPECT_TRUE(s.is_output(s.encode({2, 4, able})));
  EXPECT_EQ(s.output(s.encode({2, 4, able})), 2);
  EXPECT_FALSE(s.is_output(s.encode({2, 4, faulty})));
}

TEST(Synchronizer, PulseAdvanceSimulatesOneRound) {
  // A lone node: every activation is an AA pulse, so the Blinker must flip on
  // every step.
  Blinker pi;
  Synchronizer s(pi, 1);
  const graph::Graph g(1, {});
  sched::SynchronousScheduler sched(1);
  core::Engine engine(g, s, sched, {s.initial_state(0)}, 1);
  for (int t = 1; t <= 10; ++t) {
    engine.step();
    EXPECT_EQ(s.output(engine.state_of(0)),
              static_cast<std::int64_t>(t % 2));
  }
}

TEST(Synchronizer, NoPulseNoSimulation) {
  // Two neighbors, one torn far ahead: the lagging node cannot pulse until
  // the gap heals, and its Π-state must stay frozen while faulty detours run.
  Blinker pi;
  Synchronizer s(pi, 1);
  const auto& ts = s.unison().turns();
  const graph::Graph g = graph::path(2);
  sched::SynchronousScheduler sched(2);
  core::Engine engine(
      g, s, sched,
      {s.encode({0, 0, ts.able_id(1)}), s.encode({0, 0, ts.able_id(4)})}, 1);
  engine.step();
  // Neither side can AA-tick across a non-adjacent tear on its first step;
  // Π-states unchanged.
  EXPECT_EQ(s.decode(engine.state_of(0)).current, 0u);
  EXPECT_EQ(s.decode(engine.state_of(1)).current, 0u);
}

TEST(Synchronizer, BlinkerStaysWithinOnePulseAcrossEdges) {
  // Fidelity: neighbors' simulated round counters differ by at most one, so
  // Blinker outputs across an edge differ only as adjacent rounds allow.
  // Track simulated rounds via transition listener on AA pulses.
  Blinker pi;
  Synchronizer s(pi, 2);
  const graph::Graph g = graph::cycle(6);
  auto sched = sched::make_scheduler("uniform-single", g);
  core::Engine engine(g, s, *sched, core::Configuration(6, s.initial_state(0)),
                      5);

  std::vector<std::int64_t> pulses(6, 0);
  engine.set_transition_listener([&](core::NodeId v, core::StateId from,
                                     core::StateId to, const core::Signal&,
                                     core::Time) {
    const auto& ts = s.unison().turns();
    const auto f = s.decode(from);
    const auto t2 = s.decode(to);
    if (ts.is_able(f.turn) && ts.is_able(t2.turn) && f.turn != t2.turn) {
      ++pulses[v];
    }
  });
  for (int t = 0; t < 4000; ++t) {
    engine.step();
    for (const auto& [u, v] : g.edges()) {
      EXPECT_LE(std::abs(pulses[u] - pulses[v]), 1)
          << "pulse counts tore apart at step " << t;
    }
  }
  // Liveness: everyone pulsed many times.
  for (core::NodeId v = 0; v < 6; ++v) EXPECT_GT(pulses[v], 50);
}

TEST(Synchronizer, RejectsOversizedProducts) {
  // |Q|^2 alone overflows StateId: the constructor must refuse.
  MinPropagation huge(1ULL << 32);
  EXPECT_THROW(Synchronizer(huge, 3), std::invalid_argument);
}

TEST(Synchronizer, StateNameMentionsAllCoordinates) {
  MinPropagation pi(5);
  Synchronizer s(pi, 1);
  const auto name =
      s.state_name(s.encode({2, 4, s.unison().turns().able_id(-1)}));
  EXPECT_NE(name.find("q2"), std::string::npos);
  EXPECT_NE(name.find("q4"), std::string::npos);
  EXPECT_NE(name.find("-1"), std::string::npos);
}

}  // namespace
}  // namespace ssau::sync
