// Unit tests for the table builder and CLI flag parser.
#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace ssau::util {
namespace {

TEST(Table, AlignedPlainTextOutput) {
  Table t({"name", "value"});
  t.row().add("alpha").add(std::uint64_t{42});
  t.row().add("b").add(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().add(1).add(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, AddWithoutRowStartsOne) {
  Table t({"x"});
  t.add("implicit");
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--n=10", "--name=test"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 10);
  EXPECT_EQ(cli.get("name", ""), "test");
}

TEST(Cli, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--n", "10"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 10);
}

TEST(Cli, BooleanFlag) {
  const char* argv[] = {"prog", "--verbose"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
}

TEST(Cli, FallbacksApply) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("p", 0.25), 0.25);
  EXPECT_FALSE(cli.get_bool("x", false));
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "file1", "--k=2", "file2"};
  Cli cli(4, const_cast<char**>(argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

}  // namespace
}  // namespace ssau::util
