// Task-graph runtime and overlapped-step pipeline.
//
// Three layers of pinning:
//   * the ParallelEngine task graph itself — dependency ordering under a
//     steal storm (many tiny tasks, dependency chains, every participant
//     hungry), arena reuse across generations, and the thread-count
//     resolution contracts (0 = auto never reaches engine arithmetic as 0;
//     recommended_threads divides the hardware budget across sessions);
//   * the overlapped synchronous kernel — AU + MIS + LE under every
//     scheduler at threads {1, 2, 4, 8} with overlap_steps forced ON must
//     stay bit-identical to the serial engine (the overlap differential);
//   * the overlap window under torture — inject_state, inject_configuration,
//     topology churn, and save/load fired BETWEEN overlapped steps must each
//     flush the pipeline and observe/mutate exactly the settled state the
//     serial reference holds.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/parallel_engine.hpp"
#include "core/shard.hpp"
#include "graph/generators.hpp"
#include "le/alg_le.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"
#include "unison/alg_au.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace ssau {
namespace {

using core::ParallelEngine;
using core::Shard;

std::vector<std::string> all_scheduler_names() {
  std::vector<std::string> names = sched::async_scheduler_names();
  names.insert(names.begin(), "synchronous");
  return names;
}

std::vector<Shard> unit_shards(unsigned n) {
  std::vector<Shard> shards;
  for (unsigned i = 0; i < n; ++i) shards.push_back({i, i + 1});
  return shards;
}

// --- ParallelEngine: task graph ----------------------------------------------

TEST(TaskRuntime, DependencyChainsExecuteInOrderUnderStealStorm) {
  // C independent chains of L tiny tasks each on a P-participant runtime:
  // with tasks this small, participants drain their own deques instantly and
  // spend the generation stealing from each other. Each chain appends its
  // link index to a per-chain log; dependency ordering must survive no
  // matter which participant ran which link.
  constexpr unsigned kParticipants = 8;
  constexpr unsigned kChains = 24;
  constexpr unsigned kLinks = 50;
  ParallelEngine pool(unit_shards(kParticipants));

  struct ChainLog {
    std::vector<unsigned> order;
  };
  std::vector<ChainLog> logs(kChains);
  struct Ctx {
    std::vector<ChainLog>* logs;
  } ctx{&logs};
  const ParallelEngine::ShardFnRef link{
      +[](void* c, const Shard&, unsigned chain, std::uint64_t seq) {
        // Links of one chain are dependency-ordered, so this append is
        // race-free by the runtime's happens-before guarantee.
        (*static_cast<Ctx*>(c)->logs)[chain].order.push_back(
            static_cast<unsigned>(seq));
      },
      &ctx};

  for (int generation = 0; generation < 20; ++generation) {
    for (ChainLog& log : logs) log.order.clear();
    std::vector<ParallelEngine::TaskId> tails(kChains, ParallelEngine::kNoTask);
    // Interleave the chains' links so consecutive add_task calls belong to
    // different chains (maximally scrambled spawn order).
    for (unsigned l = 0; l < kLinks; ++l) {
      for (unsigned c = 0; c < kChains; ++c) {
        tails[c] = pool.add_task(link, Shard{0, 1}, c, l, &tails[c], 1);
      }
    }
    pool.wait_all();
    for (unsigned c = 0; c < kChains; ++c) {
      ASSERT_EQ(logs[c].order.size(), kLinks) << "chain " << c;
      for (unsigned l = 0; l < kLinks; ++l) {
        ASSERT_EQ(logs[c].order[l], l)
            << "chain " << c << " ran links out of dependency order";
      }
    }
  }
}

TEST(TaskRuntime, FanInTaskSeesEveryDependencyCompleted) {
  constexpr unsigned kParticipants = 6;
  constexpr unsigned kWide = 64;
  ParallelEngine pool(unit_shards(kParticipants));
  struct Ctx {
    std::atomic<unsigned> done{0};
    unsigned seen_at_join = 0;
  } ctx;
  const ParallelEngine::ShardFnRef leaf{
      +[](void* c, const Shard&, unsigned, std::uint64_t) {
        static_cast<Ctx*>(c)->done.fetch_add(1, std::memory_order_relaxed);
      },
      &ctx};
  const ParallelEngine::ShardFnRef join{
      +[](void* c, const Shard&, unsigned, std::uint64_t) {
        Ctx& x = *static_cast<Ctx*>(c);
        x.seen_at_join = x.done.load(std::memory_order_relaxed);
      },
      &ctx};
  std::vector<ParallelEngine::TaskId> leaves;
  for (unsigned i = 0; i < kWide; ++i) {
    leaves.push_back(pool.add_task(leaf, Shard{0, 1}, i, 0));
  }
  pool.add_task(join, Shard{0, 1}, 0, 1, leaves.data(), leaves.size());
  pool.wait_all();
  EXPECT_EQ(ctx.seen_at_join, kWide);
}

TEST(TaskRuntime, ThrowingTaskStillReleasesDependentsAndRethrows) {
  ParallelEngine pool(unit_shards(4));
  struct Ctx {
    std::atomic<int> ran{0};
  } ctx;
  const ParallelEngine::ShardFnRef boom{
      +[](void* c, const Shard&, unsigned, std::uint64_t) {
        static_cast<Ctx*>(c)->ran.fetch_add(1);
        throw std::runtime_error("task failed");
      },
      &ctx};
  const ParallelEngine::ShardFnRef after{
      +[](void* c, const Shard&, unsigned, std::uint64_t) {
        static_cast<Ctx*>(c)->ran.fetch_add(1);
      },
      &ctx};
  const ParallelEngine::TaskId first = pool.add_task(boom, Shard{0, 1}, 0, 0);
  pool.add_task(after, Shard{0, 1}, 0, 1, &first, 1);
  EXPECT_THROW(pool.wait_all(), std::runtime_error);
  EXPECT_EQ(ctx.ran.load(), 2) << "dependent of the failed task must still run";

  // The runtime stays usable for the next generation.
  ctx.ran = 0;
  pool.add_task(after, Shard{0, 1}, 0, 0);
  pool.wait_all();
  EXPECT_EQ(ctx.ran.load(), 1);
}

TEST(TaskRuntime, CompletedAndNoTaskDependenciesAreSkipped) {
  ParallelEngine pool(unit_shards(2));
  struct Ctx {
    int ran = 0;
  } ctx;
  const ParallelEngine::ShardFnRef fn{
      +[](void* c, const Shard&, unsigned, std::uint64_t) {
        ++static_cast<Ctx*>(c)->ran;  // single-threaded here: 2 shards, deps
      },
      &ctx};
  // kNoTask entries (the overlapped kernel's "no previous step" markers)
  // must be ignored, not counted as unmet dependencies.
  const ParallelEngine::TaskId none = ParallelEngine::kNoTask;
  pool.add_task(fn, Shard{0, 1}, 0, 0, &none, 1);
  pool.wait_all();
  EXPECT_EQ(ctx.ran, 1);
}

// --- thread-count resolution contracts ---------------------------------------

TEST(TaskRuntime, ResolveThreadCountContract) {
  EXPECT_EQ(ParallelEngine::resolve_thread_count(1), 1u);
  EXPECT_EQ(ParallelEngine::resolve_thread_count(6), 6u);
  // 0 = auto: hardware concurrency, clamped to at least 1 even where the
  // standard lets hardware_concurrency() report 0.
  EXPECT_GE(ParallelEngine::resolve_thread_count(0), 1u);
}

TEST(TaskRuntime, RecommendedThreadsDividesHardwareAcrossSessions) {
  const unsigned hw = ParallelEngine::resolve_thread_count(0);
  EXPECT_EQ(ParallelEngine::recommended_threads(1), hw);
  EXPECT_EQ(ParallelEngine::recommended_threads(0),
            ParallelEngine::recommended_threads(1))
      << "0 sessions must clamp to 1, not divide by zero";
  // At or beyond the core count every session gets exactly 1 thread — the
  // pooled-service no-oversubscription guarantee.
  EXPECT_EQ(ParallelEngine::recommended_threads(hw), 1u);
  EXPECT_EQ(ParallelEngine::recommended_threads(hw + 7), 1u);
  EXPECT_EQ(ParallelEngine::recommended_threads(1u << 20), 1u);
  for (const unsigned sessions : {1u, 2u, 3u, 5u, 8u}) {
    EXPECT_LE(ParallelEngine::recommended_threads(sessions) * sessions,
              std::max(hw, sessions));
    EXPECT_GE(ParallelEngine::recommended_threads(sessions), 1u);
  }
}

// --- overlapped synchronous kernel: differential -----------------------------

core::EngineOptions overlapped_options(unsigned threads) {
  core::EngineOptions options;
  options.thread_count = threads;
  options.overlap_steps = true;
  return options;
}

/// Serial reference vs overlapped engine, lockstep per-step comparison (each
/// observable read flushes the pipeline, so this exercises a depth-1 window
/// every step) PLUS a free-running segment (the pipeline reaches its full
/// window depth before the single flush at the end).
void expect_overlap_matches_serial(const graph::Graph& g,
                                   const core::Automaton& alg,
                                   const core::Configuration& c0,
                                   const std::string& sched_name,
                                   std::uint64_t seed, unsigned threads,
                                   int lockstep_steps, int free_steps) {
  auto sched_a = sched::make_scheduler(sched_name, g);
  auto sched_b = sched::make_scheduler(sched_name, g);
  core::Engine serial(g, alg, *sched_a, c0, seed, overlapped_options(1));
  core::Engine overlapped(g, alg, *sched_b, c0, seed,
                          overlapped_options(threads));
  for (int s = 0; s < lockstep_steps; ++s) {
    serial.step();
    overlapped.step();
    ASSERT_EQ(overlapped.config(), serial.config())
        << sched_name << " x" << threads << " diverged at step " << s;
    ASSERT_EQ(overlapped.time(), serial.time());
    ASSERT_EQ(overlapped.rounds_completed(), serial.rounds_completed());
    ASSERT_EQ(overlapped.round_index_now(), serial.round_index_now());
  }
  for (int s = 0; s < free_steps; ++s) {
    serial.step();
    overlapped.step();  // no observable read: the pipeline stays open
  }
  ASSERT_EQ(overlapped.config(), serial.config())
      << sched_name << " x" << threads << " diverged in the free-running window";
  ASSERT_EQ(overlapped.time(), serial.time());
  ASSERT_EQ(overlapped.rounds_completed(), serial.rounds_completed());
  for (core::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(overlapped.activation_count(v), serial.activation_count(v));
  }
}

TEST(OverlapDifferential, AlgAuEverySchedulerEveryThreadCount) {
  const unison::AlgAu alg(2);
  util::Rng rng(23);
  const graph::Graph g = graph::random_bounded_diameter(40, 2, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);
  for (const std::string& sched_name : all_scheduler_names()) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      expect_overlap_matches_serial(g, alg, c0, sched_name, 211, threads, 60,
                                    150);
    }
  }
}

TEST(OverlapDifferential, AlgMisEverySchedulerEveryThreadCount) {
  // Randomized: additionally pins the per-node rng draw sequences across the
  // pipelined frontier (any draw reordering diverges within a few steps).
  const mis::AlgMis alg({.diameter_bound = 2});
  util::Rng rng(29);
  const graph::Graph g = graph::random_bounded_diameter(36, 2, rng);
  const core::Configuration c0 =
      mis::mis_adversarial_configuration("random", alg, g, rng);
  for (const std::string& sched_name : all_scheduler_names()) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      expect_overlap_matches_serial(g, alg, c0, sched_name, 223, threads, 60,
                                    150);
    }
  }
}

TEST(OverlapDifferential, AlgLeEverySchedulerEveryThreadCount) {
  const le::AlgLe alg({.diameter_bound = 2});
  util::Rng rng(31);
  const graph::Graph g = graph::random_bounded_diameter(32, 2, rng);
  const core::Configuration c0 =
      le::le_adversarial_configuration("random", alg, g, rng);
  for (const std::string& sched_name : all_scheduler_names()) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      expect_overlap_matches_serial(g, alg, c0, sched_name, 227, threads, 60,
                                    150);
    }
  }
}

TEST(OverlapDifferential, SignalFieldMergeStaysBitIdentical) {
  // Forced-on field under the synchronous kernel: the overlapped pipeline
  // runs its chained per-step merge tasks; the field's counters must end
  // exactly where serial inline patching puts them.
  const unison::AlgAu alg(2);
  util::Rng rng(37);
  const graph::Graph g = graph::random_bounded_diameter(40, 2, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);
  auto sched_a = sched::make_scheduler("synchronous", g);
  auto sched_b = sched::make_scheduler("synchronous", g);
  core::EngineOptions serial_opts = overlapped_options(1);
  serial_opts.signal_field = core::SignalFieldMode::kOn;
  core::EngineOptions par_opts = overlapped_options(4);
  par_opts.signal_field = core::SignalFieldMode::kOn;
  core::Engine serial(g, alg, *sched_a, c0, 241, serial_opts);
  core::Engine overlapped(g, alg, *sched_b, c0, 241, par_opts);
  for (int s = 0; s < 200; ++s) {
    serial.step();
    overlapped.step();
  }
  ASSERT_EQ(overlapped.config(), serial.config());
  ASSERT_TRUE(overlapped.signal_field_active());
  const core::SignalField* fa = overlapped.signal_field();
  const core::SignalField* fb = serial.signal_field();
  ASSERT_NE(fa, nullptr);
  ASSERT_NE(fb, nullptr);
  for (core::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (core::StateId q = 0; q < alg.state_count(); ++q) {
      ASSERT_EQ(fa->count_of(v, q), fb->count_of(v, q))
          << "field diverged at node " << v << " state " << int(q);
    }
  }
}

// --- overlap window torture: flush on every observable seam ------------------

TEST(OverlapTorture, InjectionsAndChurnBetweenOverlappedStepsFlush) {
  // Drive an overlapped engine and a serial reference through the same
  // interleaving of steps, targeted faults, configuration overwrites, and
  // topology churn — each mutation lands mid-window on the overlapped side
  // and must see (and produce) exactly the serial state.
  const unison::AlgAu alg(2);
  util::Rng rng(41);
  util::Rng mutation_rng(43);
  graph::Graph g_par = graph::random_bounded_diameter(48, 2, rng);
  graph::Graph g_ser = g_par;
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g_par, rng);
  auto sched_a = sched::make_scheduler("synchronous", g_ser);
  auto sched_b = sched::make_scheduler("synchronous", g_par);
  core::Engine serial(g_ser, alg, *sched_a, c0, 251, overlapped_options(1));
  core::Engine overlapped(g_par, alg, *sched_b, c0, 251,
                          overlapped_options(4));

  const auto random_delta = [&](const graph::Graph& g) {
    graph::TopologyDelta delta;
    const auto n = g.num_nodes();
    for (int i = 0; i < 3; ++i) {
      const core::NodeId u = mutation_rng.below(n);
      const core::NodeId v = mutation_rng.below(n);
      if (u == v) continue;
      if (g.has_edge(u, v)) {
        delta.remove.push_back({u, v});
      } else {
        delta.add.push_back({u, v});
      }
    }
    return delta;
  };

  for (int cycle = 0; cycle < 30; ++cycle) {
    // A burst of steps: the overlapped side holds a multi-step pipeline.
    const int burst = 1 + static_cast<int>(mutation_rng.below(9));
    for (int s = 0; s < burst; ++s) {
      serial.step();
      overlapped.step();
    }
    switch (cycle % 4) {
      case 0: {  // targeted fault mid-window
        const core::NodeId v = mutation_rng.below(g_par.num_nodes());
        const core::StateId q =
            static_cast<core::StateId>(mutation_rng.below(alg.state_count()));
        serial.inject_state(v, q);
        overlapped.inject_state(v, q);
        break;
      }
      case 1: {  // configuration overwrite mid-window
        core::Configuration fresh(g_par.num_nodes());
        for (auto& q : fresh) {
          q = static_cast<core::StateId>(mutation_rng.below(alg.state_count()));
        }
        serial.inject_configuration(fresh);
        overlapped.inject_configuration(fresh);
        break;
      }
      case 2: {  // topology churn mid-window (shards re-balance + frontiers)
        const graph::TopologyDelta delta = random_delta(g_par);
        const graph::TopologyDelta applied_s = serial.apply_topology_delta(delta);
        const graph::TopologyDelta applied_p =
            overlapped.apply_topology_delta(delta);
        ASSERT_EQ(applied_s.add, applied_p.add);
        ASSERT_EQ(applied_s.remove, applied_p.remove);
        break;
      }
      case 3: {  // snapshot round trip mid-window
        util::BinaryWriter ws;
        overlapped.save_state(ws);
        util::BinaryWriter ws_ref;
        serial.save_state(ws_ref);
        ASSERT_EQ(ws.buffer().size(), ws_ref.buffer().size());
        util::BinaryReader rd(ws.buffer());
        overlapped.load_state(rd);  // restore into the same engine
        break;
      }
    }
    ASSERT_EQ(overlapped.config(), serial.config())
        << "diverged after mutation cycle " << cycle;
    ASSERT_EQ(overlapped.time(), serial.time());
    ASSERT_EQ(overlapped.rounds_completed(), serial.rounds_completed());
  }
}

TEST(OverlapTorture, LongFreeRunCrossesWindowBoundaries) {
  // 500 steps with no observable read: the pipeline must flush itself at
  // every internal window boundary (bounding the task arena) and still land
  // bit-identical.
  const unison::AlgAu alg(2);
  util::Rng rng(47);
  const graph::Graph g = graph::random_bounded_diameter(40, 2, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);
  auto sched_a = sched::make_scheduler("synchronous", g);
  auto sched_b = sched::make_scheduler("synchronous", g);
  core::Engine serial(g, alg, *sched_a, c0, 263, overlapped_options(1));
  core::Engine overlapped(g, alg, *sched_b, c0, 263, overlapped_options(4));
  for (int s = 0; s < 500; ++s) serial.step();
  for (int s = 0; s < 500; ++s) overlapped.step();
  ASSERT_EQ(overlapped.config(), serial.config());
  ASSERT_EQ(overlapped.time(), serial.time());
  ASSERT_EQ(overlapped.rounds_completed(), serial.rounds_completed());
}

TEST(OverlapTorture, ListenerDisablesOverlapButStaysExact) {
  // Attaching a listener mid-run flushes the pipeline and re-routes through
  // the barriered kernel; the observed transition stream must match the
  // serial engine's exactly from that point on.
  const unison::AlgAu alg(2);
  util::Rng rng(53);
  const graph::Graph g = graph::random_bounded_diameter(32, 2, rng);
  const core::Configuration c0 =
      unison::au_adversarial_configuration("random", alg, g, rng);
  auto sched_a = sched::make_scheduler("synchronous", g);
  auto sched_b = sched::make_scheduler("synchronous", g);
  core::Engine serial(g, alg, *sched_a, c0, 269, overlapped_options(1));
  core::Engine overlapped(g, alg, *sched_b, c0, 269, overlapped_options(4));
  for (int s = 0; s < 37; ++s) {  // open a pipeline first
    serial.step();
    overlapped.step();
  }
  struct Obs {
    core::NodeId v;
    core::StateId from, to;
    core::Time t;
    bool operator==(const Obs&) const = default;
  };
  std::vector<Obs> seen_serial, seen_overlapped;
  std::mutex obs_mu;  // listener runs on the stepping thread; mutex is belt
  serial.set_transition_listener([&](core::NodeId v, core::StateId from,
                                     core::StateId to, const core::Signal&,
                                     core::Time t) {
    const std::lock_guard<std::mutex> lock(obs_mu);
    seen_serial.push_back({v, from, to, t});
  });
  overlapped.set_transition_listener([&](core::NodeId v, core::StateId from,
                                         core::StateId to, const core::Signal&,
                                         core::Time t) {
    const std::lock_guard<std::mutex> lock(obs_mu);
    seen_overlapped.push_back({v, from, to, t});
  });
  for (int s = 0; s < 80; ++s) {
    serial.step();
    overlapped.step();
  }
  EXPECT_EQ(seen_overlapped, seen_serial);
  ASSERT_EQ(overlapped.config(), serial.config());
}

}  // namespace
}  // namespace ssau
