// Topology dynamics: the paper's motivating scenario — "environmental
// obstacles may disconnect (permanently or temporarily) some links in an
// otherwise fully connected network, thus increasing its diameter beyond
// one, but hopefully not to the extent of exceeding a certain fixed upper
// bound" (§1). These tests edit the topology MID-RUN through
// Engine::apply_topology_delta — one engine, one continuous trajectory, the
// configuration (and every compiled kernel, rng stream, and round) carried
// across each event in place — and verify the algorithms re-stabilize on the
// churned topology. (The bit-identity of the delta machinery itself is
// pinned in tests/test_churn_differential.cpp.)
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"
#include "unison/alg_au.hpp"
#include "unison/au_monitor.hpp"

namespace ssau::graph {
namespace {

TEST(GraphEdits, WithoutEdgesRemovesExactly) {
  const Graph g = complete(4);  // 6 edges
  const Graph h = without_edges(g, {{0, 1}, {3, 2}});
  EXPECT_EQ(h.num_edges(), 4u);
  EXPECT_FALSE(h.has_edge(0, 1));
  EXPECT_FALSE(h.has_edge(2, 3));
  EXPECT_TRUE(h.has_edge(0, 2));
  // Removing an absent edge is a no-op — including entries that could never
  // name an edge at all (self-loops, out-of-range endpoints): the lenient
  // historical contract survives the delta-API rewrite.
  EXPECT_EQ(without_edges(h, {{0, 1}}).num_edges(), 4u);
  EXPECT_EQ(without_edges(h, {{2, 2}, {0, 99}}).num_edges(), 4u);
}

TEST(GraphEdits, WithEdgesAddsAndDeduplicates) {
  const Graph g = path(4);
  const Graph h = with_edges(g, {{0, 3}, {0, 1}});
  EXPECT_EQ(h.num_edges(), 4u);  // {0,1} already present
  EXPECT_TRUE(h.has_edge(0, 3));
  EXPECT_EQ(diameter(h), 2u);
}

TEST(TopologyDynamics, AuSurvivesLinkFailuresWithinDiameterBound) {
  // Start on a full clique (diam 1), run AlgAU with slack D = 3; then break
  // links mid-run until the diameter grows to 2-3 — same engine, no rebuild.
  // AlgAU must remain/become good on the damaged topology.
  const core::NodeId n = 8;
  const int d_bound = 3;
  const unison::AlgAu alg(d_bound);
  Graph g = complete(n);

  util::Rng rng(5);
  auto sched = sched::make_scheduler("uniform-single", g);
  core::Engine engine(g, alg, *sched,
                      unison::au_adversarial_configuration("random", alg, g,
                                                           rng),
                      5);
  ASSERT_TRUE(unison::run_to_good(engine, alg, 100000).reached);

  // Environmental damage: drop a batch of links in place, keeping it
  // connected and within the bound.
  std::vector<std::pair<NodeId, NodeId>> broken;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if ((u + 2 * v) % 3 == 0) broken.emplace_back(u, v);
    }
  }
  const core::Time time_before = engine.time();
  engine.apply_topology_delta({.remove = broken, .add = {}});
  ASSERT_TRUE(g.connected());
  ASSERT_LE(diameter(g), static_cast<std::uint32_t>(d_bound));
  EXPECT_EQ(engine.time(), time_before);  // churn is not a restart

  // The carried-over configuration may or may not still be good on the new
  // topology; either way the system must (re)converge in the same run.
  const auto outcome = unison::run_to_good(engine, alg, 100000);
  ASSERT_TRUE(outcome.reached);
  const auto report = unison::verify_post_stabilization(engine, alg, 60);
  EXPECT_TRUE(report.safety_ok);
  EXPECT_TRUE(report.liveness_ok);
}

TEST(TopologyDynamics, LinkRepairCannotBreakGoodness) {
  // Adding an edge between nodes whose clocks are adjacent keeps the graph
  // good; adding one between distant clocks re-triggers recovery. Both must
  // end good — with the chords spliced into the live run.
  const unison::AlgAu alg(4);
  Graph g = cycle(8);
  util::Rng rng(9);
  auto sched = sched::make_scheduler("random-subset", g);
  core::Engine engine(g, alg, *sched,
                      unison::au_adversarial_configuration("random", alg, g,
                                                           rng),
                      9);
  ASSERT_TRUE(unison::run_to_good(engine, alg, 100000).reached);

  engine.apply_topology_delta({.remove = {}, .add = {{0, 4}, {2, 6}}});
  ASSERT_LE(diameter(g), 4u);
  ASSERT_TRUE(unison::run_to_good(engine, alg, 100000).reached);
}

TEST(TopologyDynamics, MisRecomputesAfterStructuralChange) {
  // A correct MIS on the old topology can be wrong on the new one (an added
  // edge joins two IN nodes): DetectMIS must catch it and the system must
  // recompute — across the in-place edit, not a fresh engine.
  Graph g = path(5);  // MIS {0,2,4} likely
  const int d = static_cast<int>(diameter(g));
  const mis::AlgMis alg({.diameter_bound = d});
  sched::SynchronousScheduler sched(5);
  core::Engine engine(g, alg, sched,
                      core::uniform_configuration(5, alg.initial_state()), 11);
  auto legit = [&](const core::Configuration& c) {
    return mis::mis_legitimate(alg, g, c);
  };
  ASSERT_TRUE(engine.run_until(legit, 50000).reached);

  // Join the endpoints: on the 5-cycle, {0,2,4} is no longer independent
  // when 0 and 4 are both IN. The predicate reads the live graph, so the
  // same closure keeps working after the splice.
  engine.apply_topology_delta({.remove = {}, .add = {{0, 4}}});
  ASSERT_TRUE(engine.run_until(legit, 50000).reached);
  EXPECT_TRUE(mis::mis_outputs_correct(alg, g, engine.config()));
}

TEST(TopologyDynamics, TemporaryObstacleHealsBackToTheOriginalTopology) {
  // "Permanently or temporarily": break a batch of links, re-stabilize, heal
  // them with the inverse delta, re-stabilize again — one engine throughout,
  // and the healed topology is exactly the original.
  const unison::AlgAu alg(3);
  Graph g = complete(7);
  const std::size_t edges_before = g.num_edges();
  util::Rng rng(13);
  auto sched = sched::make_scheduler("uniform-single", g);
  core::Engine engine(g, alg, *sched,
                      unison::au_adversarial_configuration("random", alg, g,
                                                           rng),
                      13);
  ASSERT_TRUE(unison::run_to_good(engine, alg, 100000).reached);

  const graph::TopologyDelta applied = engine.apply_topology_delta(
      {.remove = {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {5, 6}}, .add = {}});
  ASSERT_EQ(applied.remove.size(), 5u);
  ASSERT_TRUE(g.connected());
  ASSERT_LE(diameter(g), 3u);
  ASSERT_TRUE(unison::run_to_good(engine, alg, 100000).reached);

  engine.apply_topology_delta(applied.inverse());
  EXPECT_EQ(g.num_edges(), edges_before);
  EXPECT_EQ(diameter(g), 1u);
  ASSERT_TRUE(unison::run_to_good(engine, alg, 100000).reached);
}

}  // namespace
}  // namespace ssau::graph
