// Topology dynamics: the paper's motivating scenario — "environmental
// obstacles may disconnect (permanently or temporarily) some links in an
// otherwise fully connected network, thus increasing its diameter beyond
// one, but hopefully not to the extent of exceeding a certain fixed upper
// bound" (§1). These tests edit graphs mid-run (link failures / repairs) and
// verify the algorithms re-stabilize on the new topology, carrying their
// configurations over.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"
#include "unison/alg_au.hpp"
#include "unison/au_monitor.hpp"

namespace ssau::graph {
namespace {

TEST(GraphEdits, WithoutEdgesRemovesExactly) {
  const Graph g = complete(4);  // 6 edges
  const Graph h = without_edges(g, {{0, 1}, {3, 2}});
  EXPECT_EQ(h.num_edges(), 4u);
  EXPECT_FALSE(h.has_edge(0, 1));
  EXPECT_FALSE(h.has_edge(2, 3));
  EXPECT_TRUE(h.has_edge(0, 2));
  // Removing an absent edge is a no-op.
  EXPECT_EQ(without_edges(h, {{0, 1}}).num_edges(), 4u);
}

TEST(GraphEdits, WithEdgesAddsAndDeduplicates) {
  const Graph g = path(4);
  const Graph h = with_edges(g, {{0, 3}, {0, 1}});
  EXPECT_EQ(h.num_edges(), 4u);  // {0,1} already present
  EXPECT_TRUE(h.has_edge(0, 3));
  EXPECT_EQ(diameter(h), 2u);
}

TEST(TopologyDynamics, AuSurvivesLinkFailuresWithinDiameterBound) {
  // Start on a full clique (diam 1), run AlgAU with slack D = 3; then break
  // links until the diameter grows to 2-3, carrying the configuration into
  // a fresh engine on the damaged topology. AlgAU must remain/become good.
  const core::NodeId n = 8;
  const int d_bound = 3;
  const unison::AlgAu alg(d_bound);
  Graph g = complete(n);

  util::Rng rng(5);
  auto sched1 = sched::make_scheduler("uniform-single", g);
  core::Engine e1(g, alg, *sched1,
                  unison::au_adversarial_configuration("random", alg, g, rng),
                  5);
  ASSERT_TRUE(unison::run_to_good(e1, alg, 100000).reached);

  // Environmental damage: drop a batch of links, keep it connected and
  // within the bound.
  std::vector<std::pair<NodeId, NodeId>> broken;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if ((u + 2 * v) % 3 == 0) broken.emplace_back(u, v);
    }
  }
  const Graph damaged = without_edges(g, broken);
  ASSERT_TRUE(damaged.connected());
  ASSERT_LE(diameter(damaged), static_cast<std::uint32_t>(d_bound));

  auto sched2 = sched::make_scheduler("uniform-single", damaged);
  core::Engine e2(damaged, alg, *sched2, e1.config(), 6);
  // The carried-over configuration may or may not still be good on the new
  // topology; either way the system must (re)converge.
  const auto outcome = unison::run_to_good(e2, alg, 100000);
  ASSERT_TRUE(outcome.reached);
  const auto report = unison::verify_post_stabilization(e2, alg, 60);
  EXPECT_TRUE(report.safety_ok);
  EXPECT_TRUE(report.liveness_ok);
}

TEST(TopologyDynamics, LinkRepairCannotBreakGoodness) {
  // Adding an edge between nodes whose clocks are adjacent keeps the graph
  // good; adding one between distant clocks re-triggers recovery. Both must
  // end good.
  const unison::AlgAu alg(4);
  Graph ring = cycle(8);
  util::Rng rng(9);
  auto sched1 = sched::make_scheduler("random-subset", ring);
  core::Engine e1(ring, alg, *sched1,
                  unison::au_adversarial_configuration("random", alg, ring,
                                                       rng),
                  9);
  ASSERT_TRUE(unison::run_to_good(e1, alg, 100000).reached);

  const Graph chorded = with_edges(ring, {{0, 4}, {2, 6}});
  ASSERT_LE(diameter(chorded), 4u);
  auto sched2 = sched::make_scheduler("random-subset", chorded);
  core::Engine e2(chorded, alg, *sched2, e1.config(), 10);
  ASSERT_TRUE(unison::run_to_good(e2, alg, 100000).reached);
}

TEST(TopologyDynamics, MisRecomputesAfterStructuralChange) {
  // A correct MIS on the old topology can be wrong on the new one (an added
  // edge joins two IN nodes): DetectMIS must catch it and the system must
  // recompute.
  const Graph g = path(5);  // MIS {0,2,4} likely
  const int d = static_cast<int>(diameter(g));
  const mis::AlgMis alg({.diameter_bound = d});
  sched::SynchronousScheduler sched_old(5);
  core::Engine e1(g, alg, sched_old,
                  core::uniform_configuration(5, alg.initial_state()), 11);
  auto legit_old = [&](const core::Configuration& c) {
    return mis::mis_legitimate(alg, g, c);
  };
  ASSERT_TRUE(e1.run_until(legit_old, 50000).reached);

  // Join the endpoints: on the 5-cycle, {0,2,4} is no longer independent
  // when 0 and 4 are both IN.
  const Graph ring = with_edges(g, {{0, 4}});
  sched::SynchronousScheduler sched_new(5);
  core::Engine e2(ring, alg, sched_new, e1.config(), 12);
  auto legit_new = [&](const core::Configuration& c) {
    return mis::mis_legitimate(alg, ring, c);
  };
  ASSERT_TRUE(e2.run_until(legit_new, 50000).reached);
  EXPECT_TRUE(mis::mis_outputs_correct(alg, ring, e2.config()));
}

}  // namespace
}  // namespace ssau::graph
