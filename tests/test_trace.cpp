// Tests for the execution trace recorder.
#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "sched/scheduler.hpp"
#include "unison/alg_au.hpp"

namespace ssau::core {
namespace {

struct TracedRun {
  graph::Graph g = graph::cycle(6);
  unison::AlgAu alg{3};  // diam(C6) = 3
  sched::SynchronousScheduler sched{6};
};

TEST(Trace, RecordsEveryTransitionAndReplays) {
  TracedRun r;
  util::Rng rng(3);
  Engine engine(r.g, r.alg, r.sched,
                unison::au_adversarial_configuration("random", r.alg, r.g,
                                                     rng),
                3);
  Trace trace(engine);
  for (int t = 0; t < 100; ++t) engine.step();
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_FALSE(trace.events().empty());
  EXPECT_EQ(trace.replay(), engine.config());
}

TEST(Trace, EventsCarryConsistentTimesAndStates) {
  TracedRun r;
  util::Rng rng(5);
  Engine engine(r.g, r.alg, r.sched,
                unison::au_adversarial_configuration("tear", r.alg, r.g, rng),
                5);
  Trace trace(engine);
  for (int t = 0; t < 60; ++t) engine.step();
  Time prev_time = 0;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.time, prev_time);
    prev_time = e.time;
    EXPECT_NE(e.from, e.to);
    EXPECT_LT(e.node, 6u);
    EXPECT_LT(e.to, r.alg.state_count());
  }
}

TEST(Trace, PerNodeCountsSumToTotal) {
  TracedRun r;
  util::Rng rng(7);
  Engine engine(r.g, r.alg, r.sched,
                unison::au_adversarial_configuration("random", r.alg, r.g,
                                                     rng),
                7);
  Trace trace(engine);
  for (int t = 0; t < 80; ++t) engine.step();
  std::uint64_t sum = 0;
  for (NodeId v = 0; v < 6; ++v) sum += trace.transitions_of(v);
  EXPECT_EQ(sum, trace.events().size());
}

TEST(Trace, HistogramByTransitionType) {
  TracedRun r;
  util::Rng rng(9);
  Engine engine(r.g, r.alg, r.sched,
                unison::au_adversarial_configuration("tear", r.alg, r.g, rng),
                9);
  Trace trace(engine);
  for (int t = 0; t < 200; ++t) engine.step();
  const auto hist = trace.histogram([&](const TraceEvent& e) {
    return unison::to_string(r.alg.classify(e.from, e.to));
  });
  std::uint64_t total = 0;
  for (const auto& [label, count] : hist) {
    EXPECT_TRUE(label == "AA" || label == "AF" || label == "FA") << label;
    total += count;
  }
  EXPECT_EQ(total, trace.events().size());
}

TEST(Trace, CapacityBoundDropsOldestEvents) {
  TracedRun r;
  util::Rng rng(11);
  Engine engine(r.g, r.alg, r.sched,
                unison::au_adversarial_configuration("random", r.alg, r.g,
                                                     rng),
                11);
  Trace trace(engine, 10);
  for (int t = 0; t < 50; ++t) engine.step();
  EXPECT_LE(trace.events().size(), 10u);
  EXPECT_GT(trace.dropped(), 0u);
}

TEST(Trace, CsvHasHeaderAndOneRowPerEvent) {
  TracedRun r;
  util::Rng rng(13);
  Engine engine(r.g, r.alg, r.sched,
                unison::au_adversarial_configuration("random", r.alg, r.g,
                                                     rng),
                13);
  Trace trace(engine);
  for (int t = 0; t < 30; ++t) engine.step();
  std::ostringstream os;
  trace.write_csv(os);
  const std::string out = os.str();
  std::size_t lines = 0;
  for (const char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, trace.events().size() + 1);  // header + rows
  EXPECT_EQ(out.rfind("time,node,from,to", 0), 0u);
}

}  // namespace
}  // namespace ssau::core
