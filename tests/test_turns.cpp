// Property tests for the turn/level algebra of §2.2: encodings are bijective,
// φ is a 2k-cycle, ψ respects the inward/outward axis, distance is a metric.
#include "unison/turns.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ssau::unison {
namespace {

std::vector<Level> all_levels(const TurnSystem& ts) {
  std::vector<Level> ls;
  for (int l = -ts.k(); l <= ts.k(); ++l) {
    if (l != 0) ls.push_back(l);
  }
  return ls;
}

TEST(TurnSystem, KIsThreeDPlusTwo) {
  EXPECT_EQ(TurnSystem(1).k(), 5);
  EXPECT_EQ(TurnSystem(4).k(), 14);
  EXPECT_EQ(TurnSystem(10).k(), 32);
}

TEST(TurnSystem, StateCountIsLinearInD) {
  for (int d = 1; d <= 12; ++d) {
    const TurnSystem ts(d);
    EXPECT_EQ(ts.state_count(), static_cast<core::StateId>(12 * d + 6));
  }
}

TEST(TurnSystem, RejectsBadDiameter) {
  EXPECT_THROW(TurnSystem(0), std::invalid_argument);
  EXPECT_THROW(TurnSystem(-2), std::invalid_argument);
}

class TurnSystemP : public ::testing::TestWithParam<int> {};

TEST_P(TurnSystemP, EncodingIsBijective) {
  const TurnSystem ts(GetParam());
  std::set<core::StateId> ids;
  for (const Level l : all_levels(ts)) {
    const auto a = ts.able_id(l);
    EXPECT_TRUE(ts.is_able(a));
    EXPECT_FALSE(ts.is_faulty(a));
    EXPECT_EQ(ts.level_of(a), l);
    ids.insert(a);
    if (ts.has_faulty(l)) {
      const auto f = ts.faulty_id(l);
      EXPECT_TRUE(ts.is_faulty(f));
      EXPECT_FALSE(ts.is_able(f));
      EXPECT_EQ(ts.level_of(f), l);
      ids.insert(f);
    }
  }
  EXPECT_EQ(ids.size(), ts.state_count());
  for (const auto id : ids) EXPECT_LT(id, ts.state_count());
}

TEST_P(TurnSystemP, FaultyExistsExactlyForMagnitudeTwoPlus) {
  const TurnSystem ts(GetParam());
  EXPECT_FALSE(ts.has_faulty(1));
  EXPECT_FALSE(ts.has_faulty(-1));
  EXPECT_FALSE(ts.has_faulty(0));
  for (int m = 2; m <= ts.k(); ++m) {
    EXPECT_TRUE(ts.has_faulty(m));
    EXPECT_TRUE(ts.has_faulty(-m));
  }
  EXPECT_THROW((void)ts.faulty_id(1), std::invalid_argument);
}

TEST_P(TurnSystemP, ForwardIsA2kCycle) {
  const TurnSystem ts(GetParam());
  Level l = 1;
  std::set<Level> visited;
  for (int i = 0; i < 2 * ts.k(); ++i) {
    EXPECT_TRUE(visited.insert(l).second) << "premature revisit of " << l;
    l = ts.forward(l);
  }
  EXPECT_EQ(l, 1);  // closed the cycle
  EXPECT_EQ(static_cast<int>(visited.size()), 2 * ts.k());
}

TEST_P(TurnSystemP, ForwardSpecialCases) {
  const TurnSystem ts(GetParam());
  EXPECT_EQ(ts.forward(-1), 1);
  EXPECT_EQ(ts.forward(ts.k()), -ts.k());
  EXPECT_EQ(ts.forward(1), 2);
  EXPECT_EQ(ts.forward(-ts.k()), -ts.k() + 1);
}

TEST_P(TurnSystemP, ForwardPowersMatchClockArithmetic) {
  const TurnSystem ts(GetParam());
  for (const Level l : all_levels(ts)) {
    EXPECT_EQ(ts.forward(l, 1), ts.forward(l));
    EXPECT_EQ(ts.forward(ts.forward(l, 3), -3), l);
    EXPECT_EQ(ts.forward(l, 2 * ts.k()), l);  // full cycle
    EXPECT_EQ(ts.clock(ts.forward(l)), (ts.clock(l) + 1) % (2 * ts.k()));
  }
}

TEST_P(TurnSystemP, ClockIsABijectionOntoZ2k) {
  const TurnSystem ts(GetParam());
  std::set<int> clocks;
  for (const Level l : all_levels(ts)) {
    const int kappa = ts.clock(l);
    EXPECT_GE(kappa, 0);
    EXPECT_LT(kappa, 2 * ts.k());
    EXPECT_TRUE(clocks.insert(kappa).second);
    EXPECT_EQ(ts.level_at_clock(kappa), l);
  }
  EXPECT_EQ(static_cast<int>(clocks.size()), 2 * ts.k());
}

TEST_P(TurnSystemP, AdjacencyMatchesForward) {
  const TurnSystem ts(GetParam());
  for (const Level a : all_levels(ts)) {
    for (const Level b : all_levels(ts)) {
      const bool expect =
          a == b || a == ts.forward(b) || b == ts.forward(a);
      EXPECT_EQ(ts.adjacent(a, b), expect) << a << " vs " << b;
      EXPECT_EQ(ts.adjacent(a, b), ts.adjacent(b, a));
    }
  }
}

TEST_P(TurnSystemP, DistanceIsAMetric) {
  const TurnSystem ts(GetParam());
  const auto ls = all_levels(ts);
  for (const Level a : ls) {
    EXPECT_EQ(ts.distance(a, a), 0);
    for (const Level b : ls) {
      EXPECT_EQ(ts.distance(a, b), ts.distance(b, a));
      EXPECT_LE(ts.distance(a, b), ts.k());  // max cyclic distance
      // Triangle inequality against a fixed witness.
      EXPECT_LE(ts.distance(a, b),
                ts.distance(a, 1) + ts.distance(1, b));
    }
  }
}

TEST_P(TurnSystemP, DistanceMatchesRecursiveDefinition) {
  const TurnSystem ts(GetParam());
  // dist(ℓ, ℓ') = min steps of φ^{+1}/φ^{-1} from ℓ' to ℓ: check a few hops.
  for (const Level a : all_levels(ts)) {
    EXPECT_EQ(ts.distance(a, ts.forward(a)), 1);
    EXPECT_EQ(ts.distance(a, ts.forward(a, 2)), 2);
    EXPECT_EQ(ts.distance(a, ts.forward(a, -2)), 2);
    EXPECT_EQ(ts.distance(a, ts.forward(a, ts.k())), ts.k());
  }
}

TEST_P(TurnSystemP, OutwardsPreservesSignAndShiftsMagnitude) {
  const TurnSystem ts(GetParam());
  for (const Level l : all_levels(ts)) {
    const int mag = l > 0 ? l : -l;
    for (int j = -(mag - 1); j <= ts.k() - mag; ++j) {
      const Level r = ts.outwards(l, j);
      EXPECT_EQ(r > 0, l > 0);
      EXPECT_EQ(std::abs(r), mag + j);
    }
    EXPECT_THROW((void)ts.outwards(l, ts.k() - mag + 1), std::invalid_argument);
    EXPECT_THROW((void)ts.outwards(l, -mag), std::invalid_argument);
  }
}

TEST_P(TurnSystemP, PsiSetPredicates) {
  const TurnSystem ts(GetParam());
  EXPECT_TRUE(ts.strictly_outwards(3, 2));
  EXPECT_FALSE(ts.strictly_outwards(2, 2));
  EXPECT_FALSE(ts.strictly_outwards(-3, 2));  // different sign
  EXPECT_TRUE(ts.strictly_outwards(-3, -2));
  EXPECT_TRUE(ts.far_outwards(4, 2));
  EXPECT_FALSE(ts.far_outwards(3, 2));  // exactly one unit is not "far"
  EXPECT_TRUE(ts.weakly_outwards(2, 2));
  EXPECT_FALSE(ts.weakly_outwards(1, 2));
}

TEST_P(TurnSystemP, TurnNames) {
  const TurnSystem ts(GetParam());
  EXPECT_EQ(ts.turn_name(ts.able_id(3)), "3");
  EXPECT_EQ(ts.turn_name(ts.able_id(-1)), "-1");
  EXPECT_EQ(ts.turn_name(ts.faulty_id(-2)), "^-2");
}

INSTANTIATE_TEST_SUITE_P(Diameters, TurnSystemP,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace ssau::unison
