// Replay driver: reconstructs a recorded run from snapshot + command log.
//
//   replay --snapshot=campaign.snap --log=campaign.cmdlog [--verbose]
//
// Reads the command log's header, restores a service::Session from the
// snapshot (falling back to <snapshot>.prev when the primary checkpoint is
// torn), re-applies every logged command through Session::apply — the same
// decode path and command surface the simulation service uses — and checks
// every recorded trajectory hash. Exit status: 0 when every hash check
// passes, 1 on a divergence, 2 on unusable inputs — so a replayed
// differential failure is scriptable.
//
// Automaton and scheduler specs come from the log header and are resolved
// by service::make_automaton / sched::make_scheduler (one factory, one
// grammar — see service/session.hpp for the spec strings).
#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "core/command_log.hpp"
#include "core/snapshot.hpp"
#include "service/session.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ssau;
  util::Cli cli(argc, argv);
  const std::string snapshot_path = cli.get("snapshot", "");
  const std::string log_path = cli.get("log", "");
  const bool verbose = cli.get_bool("verbose", false);
  if (snapshot_path.empty() || log_path.empty()) {
    std::fprintf(stderr,
                 "usage: replay --snapshot=FILE --log=FILE [--verbose]\n");
    return 2;
  }

  try {
    const core::CommandLog log = core::read_command_log(log_path);
    if (log.truncated_tail) {
      std::fprintf(stderr,
                   "note: command log has a torn final record (crash tail); "
                   "replaying the complete prefix\n");
    }

    const auto bytes = core::snapshot::read_checkpoint(snapshot_path);
    const core::snapshot::Info info = core::snapshot::inspect(bytes);
    if (verbose) {
      std::printf("snapshot: n=%u m=%llu scheduler=%s seed=%llu t=%llu "
                  "rounds=%llu |Q|=%llu\n",
                  info.num_nodes,
                  static_cast<unsigned long long>(info.num_edges),
                  info.scheduler.c_str(),
                  static_cast<unsigned long long>(info.seed),
                  static_cast<unsigned long long>(info.time),
                  static_cast<unsigned long long>(info.rounds),
                  static_cast<unsigned long long>(info.state_count));
    }

    const auto session =
        service::Session::restore(bytes, service::spec_from_header(log.header));

    std::uint64_t commands_applied = 0;
    std::uint64_t steps = 0;
    std::uint64_t hash_checks = 0;
    std::uint64_t hash_mismatches = 0;
    for (const core::Command& cmd : log.commands) {
      const service::Result r = session->apply(cmd);
      if (cmd.type == core::CommandType::kExpectHash) {
        ++hash_checks;
        if (r.status == service::Status::kHashMismatch) ++hash_mismatches;
      } else if (!r.ok()) {
        // The old dispatch loop surfaced engine exceptions as "replay
        // failed"; typed results preserve that contract.
        std::fprintf(stderr, "replay failed: %s\n", r.error.c_str());
        return 2;
      }
      ++commands_applied;
      steps += r.steps;
    }

    const core::Engine& engine = session->engine();
    std::printf("replayed %llu commands (%llu steps): %llu/%llu hash checks "
                "passed; final t=%llu rounds=%llu hash=%016llx\n",
                static_cast<unsigned long long>(commands_applied),
                static_cast<unsigned long long>(steps),
                static_cast<unsigned long long>(hash_checks - hash_mismatches),
                static_cast<unsigned long long>(hash_checks),
                static_cast<unsigned long long>(engine.time()),
                static_cast<unsigned long long>(engine.rounds_completed()),
                static_cast<unsigned long long>(
                    core::engine_state_hash(engine)));
    if (hash_mismatches != 0) {
      std::fprintf(stderr, "replay DIVERGED: %llu hash mismatches\n",
                   static_cast<unsigned long long>(hash_mismatches));
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay failed: %s\n", e.what());
    return 2;
  }
}
