// Replay driver: reconstructs a recorded run from snapshot + command log.
//
//   replay --snapshot=campaign.snap --log=campaign.cmdlog [--verbose]
//
// Reads the command log's header to rebuild the collaborators (automaton by
// spec string, scheduler by name), restores the engine from the snapshot
// (falling back to <snapshot>.prev when the primary checkpoint is torn),
// re-applies every logged command, and checks every recorded trajectory
// hash. Exit status: 0 when every hash check passes, 1 on a divergence,
// 2 on unusable inputs — so a replayed differential failure is scriptable.
//
// Automaton specs (the factory below; parameters are colon-separated):
//   alg-au:<D>            unison::AlgAu with diameter bound D
//   reset-unison:<D>:<M>  unison::ResetUnison(D, M)
//   min-prop:<m>          sync::MinPropagation over m states
//   alg-mis:<D>           mis::AlgMis with diameter bound D
//   alg-le:<D>            le::AlgLe with diameter bound D
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "core/command_log.hpp"
#include "core/engine.hpp"
#include "core/snapshot.hpp"
#include "le/alg_le.hpp"
#include "mis/alg_mis.hpp"
#include "sched/scheduler.hpp"
#include "sync/simple_sync_algs.hpp"
#include "unison/alg_au.hpp"
#include "unison/baselines.hpp"
#include "util/binary_io.hpp"
#include "util/cli.hpp"

namespace {

using namespace ssau;

std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      return parts;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
}

std::unique_ptr<core::Automaton> make_automaton(const std::string& spec) {
  const auto parts = split_spec(spec);
  const auto arg = [&](std::size_t i) { return std::stoi(parts.at(i)); };
  if (parts[0] == "alg-au" && parts.size() == 2) {
    return std::make_unique<unison::AlgAu>(arg(1));
  }
  if (parts[0] == "reset-unison" && parts.size() == 3) {
    return std::make_unique<unison::ResetUnison>(arg(1), arg(2));
  }
  if (parts[0] == "min-prop" && parts.size() == 2) {
    return std::make_unique<sync::MinPropagation>(
        static_cast<core::StateId>(arg(1)));
  }
  if (parts[0] == "alg-mis" && parts.size() == 2) {
    return std::make_unique<mis::AlgMis>(
        mis::AlgMisParams{.diameter_bound = arg(1)});
  }
  if (parts[0] == "alg-le" && parts.size() == 2) {
    return std::make_unique<le::AlgLe>(le::AlgLeParams{.diameter_bound = arg(1)});
  }
  throw std::invalid_argument("unknown automaton spec: " + spec);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string snapshot_path = cli.get("snapshot", "");
  const std::string log_path = cli.get("log", "");
  const bool verbose = cli.get_bool("verbose", false);
  if (snapshot_path.empty() || log_path.empty()) {
    std::fprintf(stderr,
                 "usage: replay --snapshot=FILE --log=FILE [--verbose]\n");
    return 2;
  }

  try {
    const core::CommandLog log = core::read_command_log(log_path);
    if (log.truncated_tail) {
      std::fprintf(stderr,
                   "note: command log has a torn final record (crash tail); "
                   "replaying the complete prefix\n");
    }

    const auto bytes = core::snapshot::read_checkpoint(snapshot_path);
    const core::snapshot::Info info = core::snapshot::inspect(bytes);
    if (verbose) {
      std::printf("snapshot: n=%u m=%llu scheduler=%s seed=%llu t=%llu "
                  "rounds=%llu |Q|=%llu\n",
                  info.num_nodes,
                  static_cast<unsigned long long>(info.num_edges),
                  info.scheduler.c_str(),
                  static_cast<unsigned long long>(info.seed),
                  static_cast<unsigned long long>(info.time),
                  static_cast<unsigned long long>(info.rounds),
                  static_cast<unsigned long long>(info.state_count));
    }

    const auto automaton = make_automaton(log.header.automaton);
    graph::Graph g = core::snapshot::restore_graph(bytes);
    const auto scheduler = sched::make_scheduler(
        log.header.scheduler, g, log.header.subset_p, log.header.burst);
    const auto engine =
        core::snapshot::restore(bytes, g, *automaton, *scheduler);

    const core::ReplayResult result =
        core::replay_commands(*engine, log.commands);
    std::printf("replayed %llu commands (%llu steps): %llu/%llu hash checks "
                "passed; final t=%llu rounds=%llu hash=%016llx\n",
                static_cast<unsigned long long>(result.commands_applied),
                static_cast<unsigned long long>(result.steps),
                static_cast<unsigned long long>(result.hash_checks -
                                                result.hash_mismatches),
                static_cast<unsigned long long>(result.hash_checks),
                static_cast<unsigned long long>(engine->time()),
                static_cast<unsigned long long>(engine->rounds_completed()),
                static_cast<unsigned long long>(
                    core::engine_state_hash(*engine)));
    if (!result.ok()) {
      std::fprintf(stderr, "replay DIVERGED: %llu hash mismatches\n",
                   static_cast<unsigned long long>(result.hash_mismatches));
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay failed: %s\n", e.what());
    return 2;
  }
}
