// ssau_scale_smoke — the large-instance CI gate, as one self-checking binary.
//
// Exercises the scale pass end to end on a single large instance (CI runs it
// at 1M nodes / 1k steps per PR and at the 10M-node ceiling with fewer
// steps):
//
//   1. streams an n-node random connected graph through the two-pass
//      GraphBuilder (no intermediate edge vector),
//   2. hands the engine a MUTABLE graph so ReorderMode::kAuto engages: the
//      run executes over the BFS-reordered layout, and the smoke asserts
//      both that it engaged and that it lowered the average neighbor-id
//      distance (the locality metric the reorder exists for),
//   3. runs synchronous engine steps on the byte-compact stores,
//   4. snapshots, restores into a fresh engine (the v3 wire carries the
//      relabelling), and runs both sides further — any divergence (config,
//      time, hash, activation counts) is a failure,
//   5. asserts the build/reorder/run path never materialized the lazy
//      edges() cache (edges_rebuild_count() == 0 — the O(m) rebuild would
//      dominate at this scale), and
//   6. prints the recursive memory accounting (graph / engine bytes,
//      bytes-per-node) so CI logs carry the footprint trend.
//
// Exits non-zero on any violated invariant. Runtime target: well under a
// minute on 2 cores at 1M nodes — small enough for a per-PR CI job.
//
// Usage: ssau_scale_smoke [nodes] [steps]   (defaults 1'000'000, 1'000)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>

#include "core/command_log.hpp"
#include "core/engine.hpp"
#include "core/snapshot.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "sched/scheduler.hpp"
#include "unison/alg_au.hpp"
#include "util/rng.hpp"

namespace {

int fail(const char* what) {
  std::fprintf(stderr, "ssau_scale_smoke: FAILED: %s\n", what);
  return 1;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssau;
  const graph::NodeId n =
      argc > 1 ? static_cast<graph::NodeId>(std::strtoul(argv[1], nullptr, 10))
               : 1'000'000u;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 1'000;

  // --- 1. streaming build ----------------------------------------------------
  // Average degree ~8: dense enough to be a real CSR workload, sparse enough
  // that the full instance stays well under a gigabyte.
  const double p = 8.0 / static_cast<double>(n);
  util::Rng graph_rng(2026);
  const auto t_build = std::chrono::steady_clock::now();
  graph::Graph g = graph::random_connected(n, p, graph_rng);
  const double build_s = seconds_since(t_build);
  if (g.num_nodes() != n) return fail("graph node count");
  if (!g.connected()) return fail("graph not connected");
  const double neighbor_distance_before = graph::average_neighbor_distance(g);

  // --- 2. compact-engine run over the auto-reordered layout ------------------
  const unison::AlgAu alg(3);
  sched::SynchronousScheduler sched(n);
  util::Rng init_rng(7);
  const auto t_reorder = std::chrono::steady_clock::now();
  core::Engine engine(g, alg, sched,
                      core::random_configuration(alg, n, init_rng), 42);
  const double reorder_s = seconds_since(t_reorder);
  if (!engine.compact_config()) return fail("engine not in byte-compact mode");
  if (!g.reordered()) return fail("kAuto reorder did not engage at scale");
  const double neighbor_distance_after = graph::average_neighbor_distance(g);
  if (neighbor_distance_after >= neighbor_distance_before) {
    return fail("reorder did not improve neighbor-id locality");
  }

  const auto t_run = std::chrono::steady_clock::now();
  for (int t = 0; t < steps; ++t) engine.step();
  const double run_s = seconds_since(t_run);
  if (engine.time() != static_cast<core::Time>(steps)) {
    return fail("engine time after run");
  }

  // --- 3. snapshot round-trip + bit-identical continuation -------------------
  const auto bytes = core::snapshot::save(engine);
  graph::Graph g2 = core::snapshot::restore_graph(bytes);
  sched::SynchronousScheduler sched2(n);
  auto restored = core::snapshot::restore(bytes, g2, alg, sched2);
  if (restored->time() != engine.time()) return fail("restored time");
  if (core::engine_state_hash(*restored) != core::engine_state_hash(engine)) {
    return fail("restored state hash");
  }
  for (int t = 0; t < 10; ++t) {
    engine.step();
    restored->step();
  }
  if (core::engine_state_hash(*restored) != core::engine_state_hash(engine)) {
    return fail("post-restore continuation diverged");
  }
  for (core::NodeId v = 0; v < n; v += n / 97 + 1) {
    if (engine.activation_count(v) != restored->activation_count(v)) {
      return fail("post-restore activation counts diverged");
    }
  }

  // --- 4. no lazy edge-list rebuilds anywhere on the scale path --------------
  if (g.edges_rebuild_count() != 0) {
    return fail("edges() cache was materialized on the scale path");
  }

  // --- 5. footprint report ---------------------------------------------------
  const std::size_t graph_bytes = g.dynamic_memory_usage();
  const std::size_t engine_bytes = engine.dynamic_memory_usage();
  const double total_per_node =
      static_cast<double>(graph_bytes + engine_bytes) / static_cast<double>(n);
  std::printf("ssau_scale_smoke: OK\n");
  std::printf("  nodes               %u\n", n);
  std::printf("  edges               %zu\n", g.num_edges());
  std::printf("  build_seconds       %.3f\n", build_s);
  std::printf("  setup_seconds       %.3f  (engine + BFS reorder; avg |u-v|: %.0f -> %.0f)\n",
              reorder_s, neighbor_distance_before, neighbor_distance_after);
  std::printf("  run_seconds         %.3f  (%d sync steps)\n", run_s, steps);
  std::printf("  graph_bytes         %zu\n", graph_bytes);
  std::printf("  engine_bytes        %zu\n", engine_bytes);
  std::printf("  bytes_per_node      %.1f\n", total_per_node);
  std::printf("  snapshot_bytes      %zu\n", bytes.size());
  return 0;
}
