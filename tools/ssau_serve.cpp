// ssau_serve: line-protocol driver for SimulationService.
//
//   ssau_serve [--script=FILE] [--workers=N] [--queue=N] [--quiet]
//
// Reads newline-delimited commands (stdin by default), submits them to a
// SimulationService, and prints one result line per command in submission
// order — an in-process load-testing surface for CI, no network stack.
//
// Grammar (one command per line; blank lines and `#` comments ignored):
//
//   open <sid> automaton=SPEC scheduler=NAME graph=GSPEC [seed=N]
//        [subset-p=F] [burst=N] [init=INIT] [record=PATH]
//   step <sid> [count]
//   run-rounds <sid> <rounds>
//   inject-state <sid> <node> <state>
//   inject-config <sid> uniform:<q>
//   delta <sid> [remove=u-v,...] [add=u-v,...]
//   snapshot <sid> <path>
//   config <sid>
//   stats <sid>
//   hash <sid>
//   expect-hash <sid> <hex-digest>
//   drain
//
// <sid> is a caller-chosen session name mapped to a service session id by
// `open`. Exit status: 0 all commands ok, 1 any command produced a non-ok
// Result, 2 protocol/usage errors.
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/service.hpp"
#include "util/cli.hpp"

namespace {

using namespace ssau;

struct ProtocolError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

/// Splits "key=value" tokens into a map; bare tokens are rejected.
std::unordered_map<std::string, std::string> keyvals(
    const std::vector<std::string>& tokens, std::size_t from) {
  std::unordered_map<std::string, std::string> kv;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      throw ProtocolError("expected key=value, got '" + tokens[i] + "'");
    }
    kv[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return kv;
}

/// Parses "u-v,u-v,..." into an edge list.
std::vector<std::pair<graph::NodeId, graph::NodeId>> parse_edges(
    const std::string& spec) {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  std::istringstream in(spec);
  std::string pair;
  while (std::getline(in, pair, ',')) {
    const std::size_t dash = pair.find('-');
    if (dash == std::string::npos) {
      throw ProtocolError("expected u-v edge, got '" + pair + "'");
    }
    edges.push_back({static_cast<graph::NodeId>(std::stoul(pair.substr(0, dash))),
                     static_cast<graph::NodeId>(std::stoul(pair.substr(dash + 1)))});
  }
  return edges;
}

struct PendingLine {
  std::size_t line_no;
  std::string text;
  std::future<service::Result> future;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string script = cli.get("script", "");
  const bool quiet = cli.get_bool("quiet", false);
  service::ServiceOptions options;
  options.workers = static_cast<unsigned>(cli.get_int("workers", 0));
  options.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue", 4096));

  std::ifstream file;
  if (!script.empty()) {
    file.open(script);
    if (!file) {
      std::fprintf(stderr, "ssau_serve: cannot open script '%s'\n",
                   script.c_str());
      return 2;
    }
  }
  std::istream& in = script.empty() ? std::cin : file;

  service::SimulationService svc(options);
  std::unordered_map<std::string, service::SimulationService::SessionId> ids;
  std::unordered_map<std::string, std::string> record_paths;
  std::vector<PendingLine> pending;
  bool any_failed = false;

  const auto flush_pending = [&] {
    for (auto& p : pending) {
      const service::Result r = p.future.get();
      if (!r.ok()) any_failed = true;
      if (!quiet || !r.ok()) {
        std::printf("%zu %s status=%s", p.line_no, p.text.c_str(),
                    service::status_name(r.status));
        if (r.steps != 0) {
          std::printf(" steps=%llu",
                      static_cast<unsigned long long>(r.steps));
        }
        if (r.hash != 0) {
          std::printf(" hash=%016llx",
                      static_cast<unsigned long long>(r.hash));
        }
        if (!r.config.empty()) {
          std::printf(" |config|=%zu", r.config.size());
        }
        if (r.stats.nodes != 0) {
          std::printf(" n=%u m=%llu t=%llu rounds=%llu", r.stats.nodes,
                      static_cast<unsigned long long>(r.stats.edges),
                      static_cast<unsigned long long>(r.stats.time),
                      static_cast<unsigned long long>(r.stats.rounds));
        }
        if (!r.error.empty()) std::printf(" error=\"%s\"", r.error.c_str());
        std::printf("\n");
      }
    }
    pending.clear();
  };

  const auto session_id = [&](const std::string& sid) {
    const auto it = ids.find(sid);
    if (it == ids.end()) throw ProtocolError("unknown session '" + sid + "'");
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  try {
    while (std::getline(in, line)) {
      ++line_no;
      const auto tokens = tokenize(line);
      if (tokens.empty() || tokens[0][0] == '#') continue;
      const std::string& verb = tokens[0];

      if (verb == "drain") {
        svc.drain();
        flush_pending();
        continue;
      }
      if (tokens.size() < 2) {
        throw ProtocolError("'" + verb + "' needs a session id");
      }
      const std::string& sid = tokens[1];

      if (verb == "open") {
        const auto kv = keyvals(tokens, 2);
        service::SessionSpec spec;
        const auto get = [&](const char* key, const std::string& fallback) {
          const auto it = kv.find(key);
          return it == kv.end() ? fallback : it->second;
        };
        spec.automaton = get("automaton", spec.automaton);
        spec.scheduler = get("scheduler", spec.scheduler);
        spec.graph = get("graph", spec.graph);
        spec.initial = get("init", spec.initial);
        spec.seed = std::stoull(get("seed", "0"));
        spec.subset_p = std::stod(get("subset-p", "0.5"));
        spec.burst = static_cast<unsigned>(std::stoul(get("burst", "4")));
        const auto id = svc.open_session(spec);
        ids[sid] = id;
        const std::string record = get("record", "");
        if (!record.empty()) {
          // Recording mutates session state: start it before any command is
          // queued for the session (open is synchronous, so this is safe).
          svc.session(id).start_recording(record);
          record_paths[sid] = record;
        }
        if (!quiet) {
          std::printf("%zu open %s status=ok id=%llu\n", line_no, sid.c_str(),
                      static_cast<unsigned long long>(id));
        }
        continue;
      }

      service::Command command;
      if (verb == "step") {
        command = service::cmd::step(
            tokens.size() > 2 ? std::stoull(tokens[2]) : 1);
      } else if (verb == "run-rounds" && tokens.size() == 3) {
        command = service::cmd::run_rounds(std::stoull(tokens[2]));
      } else if (verb == "inject-state" && tokens.size() == 4) {
        command = service::cmd::inject_state(
            static_cast<core::NodeId>(std::stoul(tokens[2])),
            static_cast<core::StateId>(std::stoull(tokens[3])));
      } else if (verb == "inject-config" && tokens.size() == 3) {
        if (tokens[2].rfind("uniform:", 0) != 0) {
          throw ProtocolError("inject-config expects uniform:<q>");
        }
        const auto q =
            static_cast<core::StateId>(std::stoull(tokens[2].substr(8)));
        const auto id = session_id(sid);
        // Sizing the configuration needs the node count; engine() reads are
        // only safe when the session is idle, so drain first.
        svc.drain();
        flush_pending();
        const core::Configuration config(
            svc.session(id).engine().graph().num_nodes(), q);
        command = service::cmd::inject_configuration(config);
      } else if (verb == "delta") {
        const auto kv = keyvals(tokens, 2);
        graph::TopologyDelta delta;
        if (const auto it = kv.find("remove"); it != kv.end()) {
          delta.remove = parse_edges(it->second);
        }
        if (const auto it = kv.find("add"); it != kv.end()) {
          delta.add = parse_edges(it->second);
        }
        command = service::cmd::topology_delta(std::move(delta));
      } else if (verb == "snapshot" && tokens.size() == 3) {
        command = service::cmd::snapshot(tokens[2]);
      } else if (verb == "config") {
        command = service::cmd::query_config();
      } else if (verb == "stats") {
        command = service::cmd::query_stats();
      } else if (verb == "hash") {
        command = service::cmd::query_hash();
      } else if (verb == "expect-hash" && tokens.size() == 3) {
        command = service::cmd::expect_hash(std::stoull(tokens[2], nullptr, 16));
      } else {
        throw ProtocolError("unknown or malformed command '" + line + "'");
      }

      PendingLine p;
      p.line_no = line_no;
      p.text = verb + " " + sid;
      p.future = svc.submit(session_id(sid), std::move(command));
      pending.push_back(std::move(p));
    }

    svc.drain();
    flush_pending();
    // Flush logs before shutdown so recorded files are complete on exit.
    for (const auto& [sid, path] : record_paths) {
      svc.session(ids[sid]).stop_recording();
    }
    svc.shutdown();
  } catch (const ProtocolError& e) {
    std::fprintf(stderr, "ssau_serve: line %zu: %s\n", line_no, e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ssau_serve: %s\n", e.what());
    return 2;
  }

  return any_failed ? 1 : 0;
}
